package constraints

import (
	"math/rand"
	"testing"

	"schemanet/internal/datagen"
	"schemanet/internal/schema"
)

// twoTriangleNet builds two disconnected copies of the video-network
// triangle: six schemas, interaction edges only within each triple, ten
// candidates — five per triangle.
func twoTriangleNet(t testing.TB) *schema.Network {
	t.Helper()
	b := schema.NewBuilder()
	for g := 0; g < 2; g++ {
		prefix := string(rune('A' + g))
		s1 := b.AddSchema(prefix+"EoverI", "productionDate")
		s2 := b.AddSchema(prefix+"BBC", "date")
		s3 := b.AddSchema(prefix+"DVDizzy", "releaseDate", "screenDate")
		b.Connect(s1, s2)
		b.Connect(s2, s3)
		b.Connect(s1, s3)
		base := schema.AttrID(g * 4)
		b.AddCorrespondence(base+0, base+1, 0.9)
		b.AddCorrespondence(base+1, base+2, 0.8)
		b.AddCorrespondence(base+0, base+2, 0.7)
		b.AddCorrespondence(base+1, base+3, 0.6)
		b.AddCorrespondence(base+0, base+3, 0.5)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestComponentsVideoNetSingle(t *testing.T) {
	v := buildVideoNet(t)
	parts := Default(v.net).Components()
	if got := parts.NumComponents(); got != 1 {
		t.Fatalf("video network components = %d, want 1 (triangle couples everything)", got)
	}
	if !parts.Trivial() {
		t.Fatal("single component must report Trivial")
	}
}

func TestComponentsTwoTriangles(t *testing.T) {
	net := twoTriangleNet(t)
	parts := Default(net).Components()
	if got := parts.NumComponents(); got != 2 {
		t.Fatalf("components = %d, want 2 (disconnected triangles)", got)
	}
	if parts.NumCandidates() != net.NumCandidates() {
		t.Fatalf("partition universe = %d, want %d", parts.NumCandidates(), net.NumCandidates())
	}
	for k := 0; k < 2; k++ {
		if got := len(parts.Members(k)); got != 5 {
			t.Fatalf("component %d has %d members, want 5", k, got)
		}
	}
	// Components are ordered by smallest member and members are ascending.
	if parts.Members(0)[0] != 0 || parts.Members(1)[0] != 5 {
		t.Fatalf("component ordering wrong: %v / %v", parts.Members(0), parts.Members(1))
	}
	for c := 0; c < 5; c++ {
		if parts.ComponentOf(c) != 0 || parts.ComponentOf(c+5) != 1 {
			t.Fatalf("candidate-to-component map wrong at %d", c)
		}
	}
}

func TestComponentsInterpretedTrivial(t *testing.T) {
	net := twoTriangleNet(t)
	parts := DefaultInterpreted(net).Components()
	if !parts.Trivial() {
		t.Fatal("interpreted engine must fall back to the trivial partition")
	}
}

// residualConstraint compiles to neither shape, forcing the residual
// path of the conflict index.
type residualConstraint struct{ Constraint }

func (residualConstraint) Compile() Compiled { return Compiled{} }

func TestComponentsResidualTrivial(t *testing.T) {
	net := twoTriangleNet(t)
	e := NewEngine(net, NewOneToOne(net), residualConstraint{NewCycle(net, DefaultMaxCycleLen)})
	parts := e.Components()
	if !parts.Trivial() {
		t.Fatal("residual constraints must force the trivial partition")
	}
}

// TestComponentsCoverViolations is the safety property the decomposed
// PMN relies on: on random networks, every violation of every sampled
// instance (and of the full instance) lies inside one component.
func TestComponentsCoverViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		d, err := datagen.SyntheticNetwork(datagen.Scale(datagen.BP(), 0.3),
			datagen.DefaultSyntheticOpts(70), rng)
		if err != nil {
			t.Fatal(err)
		}
		e := Default(d.Network)
		parts := e.Components()
		check := func(v Violation) {
			k := parts.ComponentOf(v.Cands[0])
			for _, c := range v.Cands[1:] {
				if parts.ComponentOf(c) != k {
					t.Fatalf("trial %d: violation %v spans components %d and %d",
						trial, v.Cands, k, parts.ComponentOf(c))
				}
			}
		}
		for _, v := range e.Violations(e.FullInstance()) {
			check(v)
		}
		// Random subsets exercise ConflictsWith-driven violations too.
		inst := e.NewInstance()
		for c := 0; c < d.Network.NumCandidates(); c++ {
			if rng.Intn(2) == 0 {
				inst.Add(c)
			}
		}
		for c := 0; c < d.Network.NumCandidates(); c++ {
			for _, v := range e.ConflictsWith(inst, c) {
				check(v)
			}
		}
	}
}

// TestComponentsFactorizeMaximize: with a deterministic visit order,
// global Maximize equals the union of per-component Maximize runs
// restricted by excluding the complement — the factorization the
// component-restricted sampler walk builds on.
func TestComponentsFactorizeMaximize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, err := datagen.SyntheticNetwork(datagen.Scale(datagen.BP(), 0.3),
		datagen.DefaultSyntheticOpts(80), rng)
	if err != nil {
		t.Fatal(err)
	}
	e := Default(d.Network)
	parts := e.Components()
	if parts.Trivial() {
		t.Skip("generated network has a single component; factorization is vacuous")
	}
	n := d.Network.NumCandidates()

	global := e.NewInstance()
	e.Maximize(global, nil, nil)

	union := e.NewInstance()
	for k := 0; k < parts.NumComponents(); k++ {
		mask := FromIndicesFor(d.Network, parts.Members(k)...)
		notMask := mask.Clone()
		notMask.SetAll()
		notMask.DifferenceWith(mask)
		sub := e.NewInstance()
		e.Maximize(sub, notMask, nil)
		union.UnionWith(sub)
	}
	if !global.Equal(union) {
		t.Fatalf("global Maximize %v != union of per-component Maximize %v (n=%d)",
			global, union, n)
	}
}
