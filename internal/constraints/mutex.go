package constraints

import (
	"sort"

	"schemanet/internal/bitset"
	"schemanet/internal/schema"
)

// KindMutex names the mutual-exclusion constraint.
const KindMutex = "mutual-exclusion"

// MutualExclusion is a user-defined constraint declaring that certain
// pairs of attributes must never be matched together (directly or not):
// if any candidate touches attribute a and another touches attribute b,
// and (a, b) is declared exclusive, selecting both is a violation.
//
// The paper imposes no assumptions on the constraint definitions
// (§II-B); this type demonstrates the pluggable Constraint interface
// with domain knowledge like "billing and shipping addresses are
// different concepts". It is not part of the paper's Γ.
type MutualExclusion struct {
	net *schema.Network
	// exclusive maps attribute → the attributes it excludes, sorted
	// ascending and deduplicated, so every scan over a partner set —
	// and therefore the order of ConflictsWith and Violations — is
	// deterministic regardless of declaration order.
	exclusive map[schema.AttrID][]schema.AttrID
}

// NewMutualExclusion builds the constraint from exclusive attribute
// pairs (order within a pair is irrelevant).
func NewMutualExclusion(net *schema.Network, pairs [][2]schema.AttrID) *MutualExclusion {
	m := &MutualExclusion{
		net:       net,
		exclusive: make(map[schema.AttrID][]schema.AttrID),
	}
	var keys []schema.AttrID
	add := func(a, b schema.AttrID) {
		if _, ok := m.exclusive[a]; !ok {
			keys = append(keys, a)
		}
		m.exclusive[a] = append(m.exclusive[a], b)
	}
	for _, p := range pairs {
		add(p[0], p[1])
		add(p[1], p[0])
	}
	for _, a := range keys {
		excl := m.exclusive[a]
		sort.Slice(excl, func(i, j int) bool { return excl[i] < excl[j] })
		dedup := excl[:1]
		for _, b := range excl[1:] {
			if b != dedup[len(dedup)-1] {
				dedup = append(dedup, b)
			}
		}
		m.exclusive[a] = dedup
	}
	return m
}

// Name implements Constraint.
func (m *MutualExclusion) Name() string { return KindMutex }

// Compile implements Constraint. Like one-to-one the constraint is
// purely pairwise: row[c] holds every candidate covering the other side
// of an exclusive attribute pair touched by c.
func (m *MutualExclusion) Compile() Compiled {
	return m.CompileFrom(0)
}

// CompileFrom implements Growable: rows are emitted only for candidates
// at index oldN and above; CompileFrom(0) is the full compile. Retired
// candidates get no row and never appear as partners.
func (m *MutualExclusion) CompileFrom(oldN int) Compiled {
	n := m.net.NumCandidates()
	rows := make([]*bitset.Set, n)
	for c := oldN; c < n; c++ {
		if m.net.Retired(c) {
			continue
		}
		cand := m.net.Candidate(c)
		for _, a := range [2]schema.AttrID{cand.A, cand.B} {
			for _, b := range m.exclusive[a] {
				for _, d := range m.net.CandidatesOf(b) {
					if d == c {
						continue
					}
					if rows[c] == nil {
						rows[c] = bitset.New(n)
					}
					rows[c].Add(d)
				}
			}
		}
	}
	return Compiled{ConflictRows: rows}
}

// conflictPartners calls fn for every inst member that, together with
// candidate c, covers an exclusive attribute pair. fn returning false
// stops the scan.
func (m *MutualExclusion) conflictPartners(inst *bitset.Set, c int, fn func(d int) bool) {
	cand := m.net.Candidate(c)
	for _, a := range [2]schema.AttrID{cand.A, cand.B} {
		excl := m.exclusive[a]
		if len(excl) == 0 {
			continue
		}
		for _, b := range excl {
			for _, d := range m.net.CandidatesOf(b) {
				if d == c || !inst.Has(d) {
					continue
				}
				if !fn(d) {
					return
				}
			}
		}
	}
}

// HasConflict implements Constraint.
func (m *MutualExclusion) HasConflict(inst *bitset.Set, c int) bool {
	found := false
	m.conflictPartners(inst, c, func(int) bool {
		found = true
		return false
	})
	return found
}

// ConflictsWith implements Constraint.
func (m *MutualExclusion) ConflictsWith(inst *bitset.Set, c int) []Violation {
	var out []Violation
	seen := make(map[int]bool)
	m.conflictPartners(inst, c, func(d int) bool {
		if !seen[d] {
			seen[d] = true
			out = append(out, newViolation(KindMutex, c, d))
		}
		return true
	})
	return out
}

// Violations implements Constraint.
func (m *MutualExclusion) Violations(inst *bitset.Set) []Violation {
	var out []Violation
	inst.ForEach(func(c int) bool {
		m.conflictPartners(inst, c, func(d int) bool {
			if c < d {
				out = append(out, newViolation(KindMutex, c, d))
			}
			return true
		})
		return true
	})
	return out
}
