package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"schemanet/internal/graphs"
	"schemanet/internal/schema"
)

// Profile describes one synthetic dataset: its domain, the Table II
// shape statistics, the interaction-graph model, and the name-corruption
// strengths.
type Profile struct {
	Name       string
	Domain     *Domain
	NumSchemas int
	MinAttrs   int
	MaxAttrs   int
	// PoolFactor sizes the shared concept pool as PoolFactor × MaxAttrs;
	// values slightly above 1 keep schema overlap high but imperfect.
	PoolFactor float64
	// SynonymProb and AbbrevProb are per-token corruption probabilities.
	SynonymProb float64
	AbbrevProb  float64
	// EdgeProb selects the interaction-graph model: 0 yields a complete
	// graph (the paper's per-dataset setting); a positive value yields a
	// connected Erdős–Rényi graph G(n, EdgeProb) (the Figure 6 settings).
	EdgeProb float64
}

// BP reproduces the Business Partner shape of Table II: 3 schemas with
// 80–106 attributes.
func BP() Profile {
	return Profile{
		Name: "BP", Domain: BusinessPartner(),
		NumSchemas: 3, MinAttrs: 80, MaxAttrs: 106,
		PoolFactor: 1.2, SynonymProb: 0.35, AbbrevProb: 0.3,
	}
}

// PO reproduces the PurchaseOrder shape of Table II: 10 schemas with
// 35–408 attributes.
func PO() Profile {
	return Profile{
		Name: "PO", Domain: PurchaseOrder(),
		NumSchemas: 10, MinAttrs: 35, MaxAttrs: 408,
		PoolFactor: 1.2, SynonymProb: 0.35, AbbrevProb: 0.3,
	}
}

// UAF reproduces the University Application Form shape of Table II: 15
// schemas with 65–228 attributes.
func UAF() Profile {
	return Profile{
		Name: "UAF", Domain: UniversityApplication(),
		NumSchemas: 15, MinAttrs: 65, MaxAttrs: 228,
		PoolFactor: 1.2, SynonymProb: 0.4, AbbrevProb: 0.3,
	}
}

// WebForm reproduces the WebForm shape of Table II: 89 schemas with
// 10–120 attributes.
func WebForm() Profile {
	return Profile{
		Name: "WebForm", Domain: WebForms(),
		NumSchemas: 89, MinAttrs: 10, MaxAttrs: 120,
		PoolFactor: 1.25, SynonymProb: 0.45, AbbrevProb: 0.35,
	}
}

// MultiComp is a small-component-heavy shape (not in the paper): many
// small schemas drawing from a large concept pool over a sparse
// interaction graph, so attribute overlap — and with it the
// constraint-conflict structure — stays local and the candidate set
// decomposes into many small constraint-connected components. This is
// the regime the adaptive exact/sampled hybrid inference is built for
// (most components enumerate within a small budget) and the profile
// behind the BenchmarkSessionAssertInference crossover table.
func MultiComp() Profile {
	return Profile{
		Name: "MultiComp", Domain: WebForms(),
		NumSchemas: 64, MinAttrs: 3, MaxAttrs: 5,
		PoolFactor: 30.0, SynonymProb: 0.3, AbbrevProb: 0.25, EdgeProb: 0.07,
	}
}

// Profiles returns the four dataset profiles in the paper's Table II
// order.
func Profiles() []Profile {
	return []Profile{BP(), PO(), UAF(), WebForm()}
}

// Scale shrinks a profile by the given factor (0 < f <= 1) for quick
// tests and CI runs, keeping at least 2 schemas and 3 attributes.
func Scale(p Profile, f float64) Profile {
	scale := func(v int) int {
		s := int(math.Round(float64(v) * f))
		if s < 3 {
			s = 3
		}
		return s
	}
	p.Name = fmt.Sprintf("%s(x%.2g)", p.Name, f)
	p.NumSchemas = int(math.Round(float64(p.NumSchemas) * f))
	if p.NumSchemas < 2 {
		p.NumSchemas = 2
	}
	p.MinAttrs = scale(p.MinAttrs)
	p.MaxAttrs = scale(p.MaxAttrs)
	if p.MaxAttrs < p.MinAttrs {
		p.MaxAttrs = p.MinAttrs
	}
	return p
}

// caseStyle renders a token list in one schema-wide naming convention.
type caseStyle int

const (
	styleCamel caseStyle = iota
	styleSnake
	stylePascal
	styleLowerConcat
	numStyles
)

func render(tokens []string, style caseStyle) string {
	switch style {
	case styleSnake:
		return strings.Join(tokens, "_")
	case styleLowerConcat:
		return strings.Join(tokens, "")
	case stylePascal:
		var b strings.Builder
		for _, t := range tokens {
			b.WriteString(titleCase(t))
		}
		return b.String()
	default: // styleCamel
		var b strings.Builder
		for i, t := range tokens {
			if i == 0 {
				b.WriteString(t)
			} else {
				b.WriteString(titleCase(t))
			}
		}
		return b.String()
	}
}

func titleCase(t string) string {
	if t == "" {
		return t
	}
	return strings.ToUpper(t[:1]) + t[1:]
}

// pickStyle draws a naming convention: camelCase and snake_case dominate
// real schemas; separator-free lower concatenation is rarer but present
// (it is the convention that most stresses the matchers).
func pickStyle(rng *rand.Rand) caseStyle {
	switch r := rng.Float64(); {
	case r < 0.35:
		return styleCamel
	case r < 0.70:
		return styleSnake
	case r < 0.88:
		return stylePascal
	default:
		return styleLowerConcat
	}
}

// corrupt derives a schema-local attribute name from a concept name.
// Corruption strength is per *name*, not per token — at most one synonym
// swap and one abbreviation — so long concept names do not degrade into
// unmatchable strings while short ones stay untouched.
func corrupt(p Profile, concept string, style caseStyle, rng *rand.Rand) string {
	name := concept
	// Phrase-level abbreviations first ("purchase order" → "po").
	if rng.Float64() < p.AbbrevProb {
		for _, kv := range abbrevList(p.Domain.Abbrevs) {
			if strings.Contains(kv[0], " ") && strings.Contains(name, kv[0]) {
				name = strings.ReplaceAll(name, kv[0], kv[1])
				break
			}
		}
	}
	tokens := strings.Fields(name)
	if rng.Float64() < p.SynonymProb {
		if i := pickEligible(tokens, rng, func(t string) bool { return len(p.Domain.Synonyms[t]) > 0 }); i >= 0 {
			alts := p.Domain.Synonyms[tokens[i]]
			repl := strings.Fields(alts[rng.Intn(len(alts))])
			tokens = append(tokens[:i], append(repl, tokens[i+1:]...)...)
		}
	}
	if rng.Float64() < p.AbbrevProb {
		if i := pickEligible(tokens, rng, func(t string) bool { return p.Domain.Abbrevs[t] != "" }); i >= 0 {
			tokens[i] = p.Domain.Abbrevs[tokens[i]]
		}
	}
	return render(tokens, style)
}

// pickEligible returns the index of a uniformly chosen token satisfying
// ok, or -1 when none qualifies.
func pickEligible(tokens []string, rng *rand.Rand, ok func(string) bool) int {
	var idxs []int
	for i, t := range tokens {
		if ok(t) {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return -1
	}
	return idxs[rng.Intn(len(idxs))]
}

// abbrevList returns the abbreviation dictionary as deterministic sorted
// key/value pairs (map iteration order must not leak into generation).
func abbrevList(m map[string]string) [][2]string {
	out := make([][2]string, 0, len(m))
	//lint:sorted pairs are collected and sorted by key below before use
	for k, v := range m {
		out = append(out, [2]string{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// weightedSample draws k distinct indices from n with probability
// proportional to weights, using the Efraimidis–Spirakis exponential
// key method.
func weightedSample(n, k int, weight func(i int) float64, rng *rand.Rand) []int {
	type keyed struct {
		idx int
		key float64
	}
	keys := make([]keyed, n)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		keys[i] = keyed{idx: i, key: math.Pow(u, 1/weight(i))}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key > keys[b].key })
	if k > n {
		k = n
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = keys[i].idx
	}
	sort.Ints(out)
	return out
}

// Generate builds a dataset from the profile: schemas with corrupted
// attribute names over a shared concept pool, an interaction graph, and
// the concept-induced ground-truth selective matching.
func Generate(p Profile, rng *rand.Rand) (*schema.Dataset, error) {
	if p.Domain == nil {
		return nil, fmt.Errorf("datagen: profile %q has no domain", p.Name)
	}
	if p.NumSchemas < 2 {
		return nil, fmt.Errorf("datagen: profile %q needs at least 2 schemas", p.Name)
	}
	if p.MinAttrs < 1 || p.MaxAttrs < p.MinAttrs {
		return nil, fmt.Errorf("datagen: profile %q has bad attribute range [%d,%d]",
			p.Name, p.MinAttrs, p.MaxAttrs)
	}
	if p.PoolFactor < 1 {
		p.PoolFactor = 1.2
	}
	poolSize := int(math.Ceil(float64(p.MaxAttrs) * p.PoolFactor))
	concepts := p.Domain.ConceptPool(poolSize)

	// Mild popularity decay: early concepts appear in most schemas.
	weight := func(i int) float64 { return 1 / (1 + 0.015*float64(i)) }

	b := schema.NewBuilder()
	// conceptAttrs[k][s] = attribute id of concept k in schema s (or -1).
	conceptAttrs := make([][]schema.AttrID, len(concepts))
	for k := range conceptAttrs {
		conceptAttrs[k] = make([]schema.AttrID, p.NumSchemas)
		for s := range conceptAttrs[k] {
			conceptAttrs[k][s] = -1
		}
	}

	nextAttr := schema.AttrID(0)
	for s := 0; s < p.NumSchemas; s++ {
		size := p.MinAttrs
		if p.MaxAttrs > p.MinAttrs {
			size += rng.Intn(p.MaxAttrs - p.MinAttrs + 1)
		}
		chosen := weightedSample(len(concepts), size, weight, rng)
		style := pickStyle(rng)
		names := make([]string, 0, len(chosen))
		used := make(map[string]bool, len(chosen))
		for _, k := range chosen {
			name := corrupt(p, concepts[k], style, rng)
			for i := 2; used[name]; i++ {
				name = fmt.Sprintf("%s%d", name, i)
			}
			used[name] = true
			names = append(names, name)
		}
		b.AddSchema(fmt.Sprintf("%s_s%02d", p.Name, s), names...)
		for _, k := range chosen {
			conceptAttrs[k][s] = nextAttr
			nextAttr++
		}
	}

	var g *graphs.Graph
	if p.EdgeProb > 0 {
		g = graphs.ErdosRenyiConnected(p.NumSchemas, p.EdgeProb, rng)
		b.SetInteraction(g)
	} else {
		b.ConnectAll()
		g = graphs.Complete(p.NumSchemas)
	}

	net, err := b.Build()
	if err != nil {
		return nil, err
	}

	gt := schema.NewMatching()
	for _, e := range g.Edges() {
		for k := range concepts {
			a := conceptAttrs[k][e.U]
			bb := conceptAttrs[k][e.V]
			if a >= 0 && bb >= 0 {
				gt.Add(a, bb)
			}
		}
	}
	return &schema.Dataset{Name: p.Name, Network: net, GroundTruth: gt}, nil
}

// MustGenerate is Generate that panics on error; for tests and examples.
func MustGenerate(p Profile, rng *rand.Rand) *schema.Dataset {
	d, err := Generate(p, rng)
	if err != nil {
		panic(err)
	}
	return d
}
