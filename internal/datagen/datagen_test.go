package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"schemanet/internal/constraints"
	"schemanet/internal/schema"
)

func TestConceptPoolDistinctAndSized(t *testing.T) {
	for _, d := range []*Domain{BusinessPartner(), PurchaseOrder(), UniversityApplication(), WebForms()} {
		pool := d.ConceptPool(200)
		if len(pool) != 200 {
			t.Fatalf("%s: pool size = %d, want 200", d.Name, len(pool))
		}
		seen := make(map[string]bool)
		for _, c := range pool {
			if seen[c] {
				t.Fatalf("%s: duplicate concept %q", d.Name, c)
			}
			seen[c] = true
		}
	}
}

func TestConceptPoolDeterministic(t *testing.T) {
	a := PurchaseOrder().ConceptPool(150)
	b := PurchaseOrder().ConceptPool(150)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pool not deterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestGenerateRespectsProfileShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []Profile{Scale(BP(), 0.5), Scale(UAF(), 0.3), Scale(WebForm(), 0.15)} {
		d, err := Generate(p, rng)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		net := d.Network
		if net.NumSchemas() != p.NumSchemas {
			t.Errorf("%s: schemas = %d, want %d", p.Name, net.NumSchemas(), p.NumSchemas)
		}
		mn, mx := net.AttributeRange()
		if mn < p.MinAttrs || mx > p.MaxAttrs {
			t.Errorf("%s: attribute range %d..%d outside profile %d..%d",
				p.Name, mn, mx, p.MinAttrs, p.MaxAttrs)
		}
		if !net.Interaction().IsConnected() {
			t.Errorf("%s: interaction graph disconnected", p.Name)
		}
		if d.GroundTruth.Size() == 0 {
			t.Errorf("%s: empty ground truth", p.Name)
		}
	}
}

func TestGenerateFullProfilesShape(t *testing.T) {
	// The unscaled Table II shapes must be generatable.
	if testing.Short() {
		t.Skip("full profiles in short mode")
	}
	rng := rand.New(rand.NewSource(7))
	for _, p := range Profiles() {
		d, err := Generate(p, rng)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if d.Network.NumSchemas() != p.NumSchemas {
			t.Errorf("%s: wrong schema count", p.Name)
		}
	}
}

func TestGenerateDeterministicUnderSeed(t *testing.T) {
	p := Scale(BP(), 0.3)
	d1 := MustGenerate(p, rand.New(rand.NewSource(11)))
	d2 := MustGenerate(p, rand.New(rand.NewSource(11)))
	if d1.Network.NumAttributes() != d2.Network.NumAttributes() {
		t.Fatal("attribute counts differ under the same seed")
	}
	for i := 0; i < d1.Network.NumAttributes(); i++ {
		a := schema.AttrID(i)
		if d1.Network.AttrName(a) != d2.Network.AttrName(a) {
			t.Fatalf("attribute %d differs: %q vs %q", i,
				d1.Network.AttrName(a), d2.Network.AttrName(a))
		}
	}
	if d1.GroundTruth.Size() != d2.GroundTruth.Size() {
		t.Fatal("ground truths differ under the same seed")
	}
}

// TestGroundTruthSatisfiesConstraints verifies the central datagen
// invariant: the concept-cluster ground truth is consistent under both
// paper constraints (it is a valid selective matching).
func TestGroundTruthSatisfiesConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		d := MustGenerate(Scale(BP(), 0.3), rng)
		// Build a network whose candidates are exactly the ground truth.
		var cands []schema.Correspondence
		for _, p := range d.GroundTruth.Pairs() {
			cands = append(cands, schema.Correspondence{A: p[0], B: p[1], Confidence: 1})
		}
		net, err := d.Network.WithCandidates(cands)
		if err != nil {
			t.Fatal(err)
		}
		e := constraints.Default(net)
		if !e.Consistent(e.FullInstance()) {
			t.Fatalf("trial %d: ground truth violates constraints: %v",
				trial, e.Violations(e.FullInstance())[:1])
		}
	}
}

func TestGroundTruthCoversSharedConcepts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := MustGenerate(Scale(BP(), 0.3), rng)
	// Every ground-truth pair must span an interaction edge and two
	// distinct schemas.
	for _, p := range d.GroundTruth.Pairs() {
		sa, sb := d.Network.SchemaOf(p[0]), d.Network.SchemaOf(p[1])
		if sa == sb {
			t.Fatalf("ground-truth pair within one schema: %v", p)
		}
		if !d.Network.Interaction().HasEdge(int(sa), int(sb)) {
			t.Fatalf("ground-truth pair across non-edge: %v", p)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(Profile{Name: "x"}, rng); err == nil {
		t.Error("want error for missing domain")
	}
	if _, err := Generate(Profile{Name: "x", Domain: BusinessPartner(), NumSchemas: 1, MinAttrs: 5, MaxAttrs: 10}, rng); err == nil {
		t.Error("want error for single schema")
	}
	if _, err := Generate(Profile{Name: "x", Domain: BusinessPartner(), NumSchemas: 3, MinAttrs: 10, MaxAttrs: 5}, rng); err == nil {
		t.Error("want error for inverted attr range")
	}
}

func TestErdosRenyiProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := Scale(BP(), 0.5)
	p.NumSchemas = 8
	p.EdgeProb = 0.3
	d := MustGenerate(p, rng)
	g := d.Network.Interaction()
	if !g.IsConnected() {
		t.Fatal("ER interaction graph must be connected")
	}
	if g.NumEdges() == 8*7/2 {
		t.Log("warning: ER graph came out complete (possible but unlikely)")
	}
}

func TestAttributeNamesUniquePerSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := MustGenerate(Scale(PO(), 0.2), rng)
	for _, s := range d.Network.Schemas() {
		seen := make(map[string]bool)
		for _, a := range s.Attrs {
			n := d.Network.AttrName(a)
			if seen[n] {
				t.Fatalf("schema %s has duplicate attribute %q", s.Name, n)
			}
			seen[n] = true
		}
	}
}

func TestCorruptionActuallyVariesNames(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := MustGenerate(Scale(BP(), 0.5), rng)
	// Different schemas should not all use identical attribute names;
	// count cross-schema ground-truth pairs with differing names.
	differ := 0
	for _, p := range d.GroundTruth.Pairs() {
		if d.Network.AttrName(p[0]) != d.Network.AttrName(p[1]) {
			differ++
		}
	}
	if differ == 0 {
		t.Fatal("corruption produced no name variation at all")
	}
	frac := float64(differ) / float64(d.GroundTruth.Size())
	t.Logf("ground-truth pairs with differing names: %.1f%%", 100*frac)
	if frac < 0.2 {
		t.Errorf("too little variation (%.2f) for matchers to be challenged", frac)
	}
}

func TestRenderStyles(t *testing.T) {
	tokens := []string{"order", "date"}
	cases := map[caseStyle]string{
		styleCamel:       "orderDate",
		styleSnake:       "order_date",
		stylePascal:      "OrderDate",
		styleLowerConcat: "orderdate",
	}
	for style, want := range cases {
		if got := render(tokens, style); got != want {
			t.Errorf("render(%v) = %q, want %q", style, got, want)
		}
	}
}

func TestWeightedSampleProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	w := func(i int) float64 { return 1 / (1 + float64(i)) }
	got := weightedSample(50, 10, w, rng)
	if len(got) != 10 {
		t.Fatalf("sample size = %d, want 10", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 50 {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
	// k > n clamps.
	if got := weightedSample(5, 10, w, rng); len(got) != 5 {
		t.Fatalf("clamped sample size = %d, want 5", len(got))
	}
	// Heavier weights should be sampled more often.
	heavy := 0
	for trial := 0; trial < 300; trial++ {
		s := weightedSample(20, 5, w, rng)
		for _, v := range s {
			if v == 0 {
				heavy++
			}
		}
	}
	light := 0
	for trial := 0; trial < 300; trial++ {
		s := weightedSample(20, 5, w, rng)
		for _, v := range s {
			if v == 19 {
				light++
			}
		}
	}
	if heavy <= light {
		t.Errorf("weighting ineffective: index0 sampled %d times, index19 %d", heavy, light)
	}
}

func TestSyntheticCandidatesPrecisionAndSize(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := MustGenerate(Scale(BP(), 0.4), rng)
	opts := SyntheticOpts{TargetCount: 150, Precision: 0.6, ConflictBias: 0.7}
	cands, err := SyntheticCandidates(d, opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The target shrinks when ground truth is scarce so the requested
	// precision is preserved; the count must never exceed the target.
	if len(cands) > 150 || len(cands) < 20 {
		t.Fatalf("candidate count = %d, want in (20, 150]", len(cands))
	}
	correct := 0
	for _, c := range cands {
		if d.GroundTruth.ContainsCorrespondence(c) {
			correct++
		}
		if c.Confidence <= 0 || c.Confidence >= 1 {
			t.Fatalf("confidence out of range: %v", c.Confidence)
		}
	}
	prec := float64(correct) / float64(len(cands))
	if prec < 0.45 || prec > 0.75 {
		t.Errorf("synthetic precision = %.3f, want ≈ 0.6", prec)
	}
	// No duplicate pairs.
	seen := make(map[[2]schema.AttrID]bool)
	for _, c := range cands {
		if seen[c.Pair()] {
			t.Fatalf("duplicate synthetic candidate %v", c)
		}
		seen[c.Pair()] = true
	}
}

func TestSyntheticCandidatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := MustGenerate(Scale(BP(), 0.3), rng)
	d2 := &schema.Dataset{Name: "no-gt", Network: d.Network}
	if _, err := SyntheticCandidates(d2, DefaultSyntheticOpts(10), rng); err == nil {
		t.Error("want error for missing ground truth")
	}
}

func TestSyntheticNetworkBuildsValidNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d, err := SyntheticNetwork(Scale(BP(), 0.3), DefaultSyntheticOpts(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.Network.NumCandidates() == 0 {
		t.Fatal("no candidates in synthetic network")
	}
	// Candidates must respect the interaction graph (Build would have
	// failed otherwise) — spot-check endpoints differ in schema.
	for i := 0; i < d.Network.NumCandidates(); i++ {
		c := d.Network.Candidate(i)
		if d.Network.SchemaOf(c.A) == d.Network.SchemaOf(c.B) {
			t.Fatalf("intra-schema candidate %v", c)
		}
	}
}

func TestGeneratedDatasetJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	d, err := SyntheticNetwork(Scale(BP(), 0.3), DefaultSyntheticOpts(80), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := schema.EncodeDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := schema.DecodeDataset(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Network.NumSchemas() != d.Network.NumSchemas() ||
		back.Network.NumAttributes() != d.Network.NumAttributes() ||
		back.Network.NumCandidates() != d.Network.NumCandidates() {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			back.Network.NumSchemas(), back.Network.NumAttributes(), back.Network.NumCandidates(),
			d.Network.NumSchemas(), d.Network.NumAttributes(), d.Network.NumCandidates())
	}
	if back.GroundTruth.Size() != d.GroundTruth.Size() {
		t.Fatalf("ground truth size changed: %d vs %d",
			back.GroundTruth.Size(), d.GroundTruth.Size())
	}
	// Candidate confidences survive bit-exactly through JSON.
	for i := 0; i < d.Network.NumCandidates(); i++ {
		c := d.Network.Candidate(i)
		j := back.Network.CandidateIndex(c.A, c.B)
		if j < 0 {
			t.Fatalf("candidate %v lost in round trip", c)
		}
		if back.Network.Candidate(j).Confidence != c.Confidence {
			t.Fatalf("confidence changed for %v", c)
		}
	}
}

func TestScaleProfile(t *testing.T) {
	p := Scale(WebForm(), 0.1)
	if p.NumSchemas != 9 {
		t.Errorf("scaled schemas = %d, want 9", p.NumSchemas)
	}
	if p.MinAttrs < 3 {
		t.Errorf("scaled min attrs = %d, want >= 3", p.MinAttrs)
	}
	if !strings.Contains(p.Name, "WebForm") {
		t.Errorf("scaled name = %q", p.Name)
	}
}
