// Package datagen generates synthetic schema matching datasets that
// substitute for the paper's four proprietary corpora (BP, PO, UAF,
// WebForm; §VI-A, Table II). A dataset is a set of schemas over a pool
// of shared *concepts*: each concept contributes at most one attribute
// per schema, so the induced ground-truth matching satisfies the
// one-to-one and cycle constraints by construction — exactly the
// properties the paper's selective matching has. Attribute names are
// per-schema corruptions of the concept names (synonyms, abbreviations,
// case styles), and confusable sibling concepts ("release date" vs
// "production date") make matchers commit realistic errors.
package datagen

import (
	"fmt"
	"math/rand"
)

// Domain is a vocabulary from which concept names are built as
// entity-field combinations ("purchase order" × "date" → "purchase order
// date"), plus the substitution dictionaries used to corrupt names.
type Domain struct {
	Name     string
	Entities []string
	Fields   []string
	// Synonyms maps a token to interchangeable alternatives.
	Synonyms map[string][]string
	// Abbrevs maps a token to a shorthand used by some schemas.
	Abbrevs map[string]string
	// Modifiers derive confusable sibling concepts ("release date" from
	// "production date").
	Modifiers []string
}

// ConceptPool returns n distinct concept names (token lists joined by
// spaces). The full grid — bare entities, entity-field combinations,
// and modifier-derived siblings — is generated and then deterministically
// shuffled, so a pool of any size mixes short and long, confusable and
// distinctive names (a size-n prefix of only bare entities would be
// trivially matchable).
func (d *Domain) ConceptPool(n int) []string {
	var pool []string
	seen := make(map[string]bool)
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			pool = append(pool, s)
		}
	}
	for _, e := range d.Entities {
		add(e)
	}
	for _, f := range d.Fields {
		for _, e := range d.Entities {
			add(e + " " + f)
		}
	}
	for _, m := range d.Modifiers {
		for _, e := range d.Entities {
			for _, f := range d.Fields {
				if len(pool) >= 3*n {
					break
				}
				add(m + " " + e + " " + f)
			}
		}
	}
	if len(pool) < n {
		panic(fmt.Sprintf("datagen: domain %s can only produce %d concepts, need %d",
			d.Name, len(pool), n))
	}
	// Deterministic shuffle: the pool order is part of the domain
	// definition, independent of the caller's rng.
	shuffleRng := rand.New(rand.NewSource(int64(len(d.Name)) + 7919))
	shuffleRng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:n]
}

// BusinessPartner models enterprise business-partner schemas (BP).
func BusinessPartner() *Domain {
	return &Domain{
		Name: "business-partner",
		Entities: []string{
			"partner", "company", "contact", "customer", "vendor", "account",
			"address", "bank", "person", "organization", "branch", "region",
			"employee", "department", "role", "agreement",
		},
		Fields: []string{
			"id", "name", "number", "type", "status", "code", "date",
			"street", "city", "country", "postal code", "phone", "fax",
			"email", "currency", "language", "tax number", "category",
			"description", "created date", "modified date", "valid from",
			"valid to", "group",
		},
		Synonyms: map[string][]string{
			"id":       {"identifier", "key"},
			"name":     {"title", "label"},
			"number":   {"no", "num"},
			"phone":    {"telephone", "tel"},
			"street":   {"road"},
			"company":  {"firm", "enterprise"},
			"vendor":   {"supplier"},
			"customer": {"client"},
			"type":     {"kind"},
			"code":     {"cd"},
			"email":    {"mail"},
			"country":  {"nation"},
			"created":  {"creation"},
			"modified": {"changed", "updated"},
		},
		Abbrevs: map[string]string{
			"number": "nbr", "customer": "cust", "address": "addr",
			"department": "dept", "organization": "org", "description": "desc",
			"category": "cat", "telephone": "tel", "identifier": "id",
		},
		Modifiers: []string{"primary", "secondary", "billing", "shipping", "legal"},
	}
}

// PurchaseOrder models e-business purchase-order schemas (PO).
func PurchaseOrder() *Domain {
	return &Domain{
		Name: "purchase-order",
		Entities: []string{
			"order", "purchase order", "invoice", "item", "line item",
			"supplier", "buyer", "shipment", "payment", "product", "tax",
			"discount", "contract", "delivery", "billing", "warehouse",
			"currency", "unit", "price", "contact", "address", "freight",
			"quote", "receipt",
		},
		Fields: []string{
			"id", "name", "number", "date", "code", "type", "status",
			"amount", "quantity", "description", "street", "city", "country",
			"postal code", "phone", "email", "total", "rate", "reference",
			"comment", "due date", "issue date", "net amount", "gross amount",
		},
		Synonyms: map[string][]string{
			"amount":   {"value", "sum"},
			"quantity": {"count", "qty"},
			"id":       {"identifier", "key"},
			"number":   {"no", "num"},
			"date":     {"day"},
			"supplier": {"vendor", "seller"},
			"buyer":    {"purchaser", "customer"},
			"total":    {"sum total", "grand total"},
			"price":    {"cost"},
			"comment":  {"note", "remark"},
			"type":     {"kind"},
		},
		Abbrevs: map[string]string{
			"quantity": "qty", "amount": "amt", "purchase order": "po",
			"number": "nbr", "description": "desc", "reference": "ref",
			"payment": "pmt", "product": "prod", "order": "ord",
		},
		Modifiers: []string{"requested", "confirmed", "actual", "estimated", "original"},
	}
}

// UniversityApplication models university application form schemas (UAF).
func UniversityApplication() *Domain {
	return &Domain{
		Name: "university-application",
		Entities: []string{
			"applicant", "student", "school", "program", "degree", "course",
			"test", "transcript", "recommendation", "essay", "address",
			"guardian", "parent", "scholarship", "term", "major", "minor",
			"enrollment", "admission", "residence", "citizenship", "fee",
		},
		Fields: []string{
			"id", "name", "first name", "last name", "middle name", "date",
			"date of birth", "gender", "status", "type", "score", "grade",
			"year", "street", "city", "state", "country", "postal code",
			"phone", "email", "gpa", "rank", "title", "code", "deadline",
			"start date", "end date",
		},
		Synonyms: map[string][]string{
			"applicant": {"candidate"},
			"school":    {"institution", "college"},
			"program":   {"course of study"},
			"score":     {"result", "mark"},
			"grade":     {"mark"},
			"guardian":  {"parent"},
			"phone":     {"telephone"},
			"id":        {"identifier"},
			"gender":    {"sex"},
			"name":      {"title"},
		},
		Abbrevs: map[string]string{
			"university": "univ", "first name": "fname", "last name": "lname",
			"date of birth": "dob", "number": "num", "telephone": "tel",
			"recommendation": "rec", "application": "app",
		},
		Modifiers: []string{"permanent", "mailing", "current", "previous", "intended"},
	}
}

// WebForms models heterogeneous web-form schemas (WebForm).
func WebForms() *Domain {
	return &Domain{
		Name: "web-form",
		Entities: []string{
			"user", "account", "contact", "profile", "search", "booking",
			"flight", "hotel", "car", "movie", "book", "author", "title",
			"price", "location", "date", "review", "rating", "payment",
			"card", "passenger", "room", "guest",
		},
		Fields: []string{
			"id", "name", "first name", "last name", "email", "password",
			"phone", "street", "city", "state", "country", "zip", "type",
			"number", "date", "time", "from", "to", "min", "max", "count",
			"category", "keyword", "comment",
		},
		Synonyms: map[string][]string{
			"zip":     {"postal code", "postcode"},
			"phone":   {"telephone", "mobile"},
			"email":   {"mail", "e mail"},
			"keyword": {"query", "term"},
			"count":   {"quantity"},
			"price":   {"cost", "fare"},
			"user":    {"member"},
			"booking": {"reservation"},
			"comment": {"message", "remark"},
			"from":    {"origin", "departure"},
			"to":      {"destination", "arrival"},
		},
		Abbrevs: map[string]string{
			"number": "no", "password": "pwd", "message": "msg",
			"quantity": "qty", "category": "cat", "telephone": "tel",
			"address": "addr", "minimum": "min", "maximum": "max",
		},
		Modifiers: []string{"departure", "return", "check in", "check out", "preferred"},
	}
}
