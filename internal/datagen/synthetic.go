package datagen

import (
	"fmt"
	"math/rand"

	"schemanet/internal/schema"
)

// SyntheticOpts controls direct candidate synthesis. Instead of running
// a matcher, SyntheticCandidates fabricates a candidate set with a
// controlled precision/size directly from the ground truth — the right
// tool for experiments that measure the downstream machinery (sampling
// time in Fig. 6, approximation quality in Fig. 7) rather than matcher
// quality.
type SyntheticOpts struct {
	// TargetCount is the desired |C|; 0 means all ground-truth pairs
	// plus the implied decoys.
	TargetCount int
	// Precision is the fraction of candidates drawn from the ground
	// truth (the rest are decoys). Clamped to (0, 1].
	Precision float64
	// ConflictBias is the probability that a decoy shares an attribute
	// with an already chosen candidate (creating one-to-one conflicts)
	// rather than being a uniformly random wrong pair.
	ConflictBias float64
	// StrictCount keeps TargetCount even when the ground truth cannot
	// supply enough correct candidates (the precision drops instead).
	// The network-size sweeps (Figures 6 and 7) need exact |C|.
	StrictCount bool
}

// DefaultSyntheticOpts mimics the paper's matcher-output statistics:
// precision ≈ 0.67 with conflict-heavy decoys.
func DefaultSyntheticOpts(targetCount int) SyntheticOpts {
	return SyntheticOpts{TargetCount: targetCount, Precision: 0.67, ConflictBias: 0.7}
}

// SyntheticCandidates fabricates a candidate correspondence set for the
// dataset's network. Correct candidates receive confidences in
// [0.55, 0.95], decoys in [0.35, 0.8], so confidence overlaps but
// correlates with correctness, like real matcher output.
func SyntheticCandidates(d *schema.Dataset, opts SyntheticOpts, rng *rand.Rand) ([]schema.Correspondence, error) {
	if d.GroundTruth == nil {
		return nil, fmt.Errorf("datagen: dataset %q has no ground truth", d.Name)
	}
	if opts.Precision <= 0 || opts.Precision > 1 {
		opts.Precision = 0.67
	}
	net := d.Network
	gtPairs := d.GroundTruth.Pairs()
	if len(gtPairs) == 0 {
		return nil, fmt.Errorf("datagen: dataset %q has empty ground truth", d.Name)
	}

	target := opts.TargetCount
	if target <= 0 {
		target = int(float64(len(gtPairs)) / opts.Precision)
	}
	nTrue := int(float64(target) * opts.Precision)
	if nTrue > len(gtPairs) {
		nTrue = len(gtPairs)
		if !opts.StrictCount {
			// Not enough ground truth for the requested size: shrink the
			// candidate set rather than flooding it with decoys, so the
			// requested precision is preserved.
			target = int(float64(nTrue) / opts.Precision)
		}
	}
	if nTrue < 1 {
		nTrue = 1
	}

	seen := make(map[[2]schema.AttrID]bool)
	var out []schema.Correspondence
	add := func(a, b schema.AttrID, conf float64) bool {
		c := schema.Correspondence{A: a, B: b, Confidence: conf}.Canonical()
		if seen[c.Pair()] {
			return false
		}
		seen[c.Pair()] = true
		out = append(out, c)
		return true
	}

	perm := rng.Perm(len(gtPairs))
	for _, i := range perm[:nTrue] {
		p := gtPairs[i]
		add(p[0], p[1], 0.55+0.4*rng.Float64())
	}

	// Decoys: wrong pairs on interaction edges, biased toward sharing an
	// attribute with an existing candidate.
	edges := net.Interaction().Edges()
	attempts := 0
	maxAttempts := 50 * target
	for len(out) < target && attempts < maxAttempts {
		attempts++
		var a, b schema.AttrID
		if len(out) > 0 && rng.Float64() < opts.ConflictBias {
			base := out[rng.Intn(len(out))]
			shared := base.A
			otherSchema := net.SchemaOf(base.B)
			if rng.Intn(2) == 0 {
				shared = base.B
				otherSchema = net.SchemaOf(base.A)
			}
			attrs := net.SchemaByID(otherSchema).Attrs
			a, b = shared, attrs[rng.Intn(len(attrs))]
		} else {
			e := edges[rng.Intn(len(edges))]
			s1 := net.SchemaByID(schema.SchemaID(e.U)).Attrs
			s2 := net.SchemaByID(schema.SchemaID(e.V)).Attrs
			a, b = s1[rng.Intn(len(s1))], s2[rng.Intn(len(s2))]
		}
		if net.SchemaOf(a) == net.SchemaOf(b) {
			continue
		}
		if d.GroundTruth.Contains(a, b) {
			continue
		}
		add(a, b, 0.35+0.45*rng.Float64())
	}
	return out, nil
}

// SyntheticNetwork is a convenience that fabricates candidates and
// returns the network carrying them (plus the dataset for ground truth).
func SyntheticNetwork(p Profile, opts SyntheticOpts, rng *rand.Rand) (*schema.Dataset, error) {
	d, err := Generate(p, rng)
	if err != nil {
		return nil, err
	}
	cands, err := SyntheticCandidates(d, opts, rng)
	if err != nil {
		return nil, err
	}
	net, err := d.Network.WithCandidates(cands)
	if err != nil {
		return nil, err
	}
	return &schema.Dataset{Name: d.Name, Network: net, GroundTruth: d.GroundTruth}, nil
}
