package datagen

import (
	"math/rand"
	"sort"
	"testing"

	"schemanet/internal/constraints"
)

// TestMultiCompProfileDecomposes pins the property the profile exists
// for: a MultiComp candidate set splits into many small
// constraint-connected components — the small-component-heavy regime
// of the hybrid inference's crossover benchmark.
func TestMultiCompProfileDecomposes(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		d, err := SyntheticNetwork(MultiComp(), SyntheticOpts{
			TargetCount: 512, Precision: 0.67, ConflictBias: 0.3, StrictCount: true,
		}, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		parts := constraints.Default(d.Network).Components()
		n := d.Network.NumCandidates()
		sizes := make([]int, parts.NumComponents())
		for k := range sizes {
			sizes[k] = len(parts.Members(k))
		}
		sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
		mean := float64(n) / float64(len(sizes))
		t.Logf("seed %d: C=%d comps=%d mean=%.1f largest=%v", seed, n, len(sizes), mean, sizes[:minInt(5, len(sizes))])
		if len(sizes) < 50 {
			t.Errorf("seed %d: only %d components, want ≥ 50 (small-component-heavy)", seed, len(sizes))
		}
		if mean > 10 {
			t.Errorf("seed %d: mean component size %.1f, want ≤ 10", seed, mean)
		}
		if sizes[0] > 64 {
			t.Errorf("seed %d: largest component has %d members, want ≤ 64 — no hub component", seed, sizes[0])
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
