package sampling

import (
	"math/rand"
	"testing"

	"schemanet/internal/bitset"
)

// randomStores builds a global store and a component store with
// identical random contents, so every kernel can be exercised on both
// column layouts (identity and local-index).
func randomStores(t *testing.T, rng *rand.Rand, n, m, rows int) (global, comp *Store, members []int) {
	t.Helper()
	members = make([]int, 0, m)
	perm := rng.Perm(n)
	for _, c := range perm[:m] {
		members = append(members, c)
	}
	// members must be ascending for a component store's column layout to
	// mirror the PMN's.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && members[j] < members[j-1]; j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	local := make([]int32, n)
	for j, c := range members {
		local[c] = int32(j)
	}
	global = NewStore(m, rows)
	comp = NewComponentStore(n, rows, members, local)
	for r := 0; r < rows; r++ {
		gInst := bitset.New(m)
		cInst := bitset.New(n)
		for j, c := range members {
			if rng.Intn(2) == 0 {
				gInst.Add(j)
				cInst.Add(c)
			}
		}
		global.Add(gInst)
		comp.Add(cInst)
	}
	return global, comp, members
}

// TestCoCountsSubsetMatchesFull checks the subset kernel against the
// full CoCountsInto pass: for every candidate and a random column
// subset, the subset counts must equal the corresponding entries of
// the full count vectors, and the partition sizes must agree.
func TestCoCountsSubsetMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n, m, rows := 40, 17, 1+rng.Intn(60)
		global, comp, members := randomStores(t, rng, n, m, rows)

		var subset []int
		for j := 0; j < m; j++ {
			if rng.Intn(3) > 0 {
				subset = append(subset, j)
			}
		}
		fullW, fullWo := make([]int, m), make([]int, m)
		subW, subWo := make([]int, len(subset)), make([]int, len(subset))
		for _, st := range []*Store{global, comp} {
			cands := st.TrackedMembers()
			if cands == nil {
				cands = make([]int, m)
				for j := range cands {
					cands[j] = j
				}
			}
			for _, c := range cands {
				fw, fwo := st.CoCountsInto(c, fullW, fullWo)
				sw, swo := st.CoCountsSubsetInto(c, subset, subW, subWo)
				if fw != sw || fwo != swo {
					t.Fatalf("trial %d cand %d: partition sizes (%d,%d) != (%d,%d)", trial, c, fw, fwo, sw, swo)
				}
				for i, j := range subset {
					if subW[i] != fullW[j] || subWo[i] != fullWo[j] {
						t.Fatalf("trial %d cand %d col %d: subset counts (%d,%d) != full (%d,%d)",
							trial, c, j, subW[i], subWo[i], fullW[j], fullWo[j])
					}
				}
			}
		}
		_ = members
	}
}

// TestCoCountsBlockMatchesSubset checks the batched block kernel
// against per-candidate subset passes: one column sweep serving a whole
// block must produce exactly the per-candidate results.
func TestCoCountsBlockMatchesSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		n, m, rows := 48, 21, 1+rng.Intn(60)
		global, comp, _ := randomStores(t, rng, n, m, rows)

		var subset []int
		for j := 0; j < m; j++ {
			if rng.Intn(4) > 0 {
				subset = append(subset, j)
			}
		}
		for _, st := range []*Store{global, comp} {
			cands := st.TrackedMembers()
			if cands == nil {
				cands = make([]int, m)
				for j := range cands {
					cands[j] = j
				}
			}
			b := 1 + rng.Intn(8)
			if b > len(cands) {
				b = len(cands)
			}
			block := make([]int, 0, b)
			for _, i := range rng.Perm(len(cands))[:b] {
				block = append(block, cands[i])
			}
			bw := make([][]int, b)
			bwo := make([][]int, b)
			for i := range bw {
				bw[i] = make([]int, len(subset))
				bwo[i] = make([]int, len(subset))
			}
			bn, bno := make([]int, b), make([]int, b)
			cols := make([][]uint64, b)
			st.CoCountsBlockInto(block, subset, cols, bw, bwo, bn, bno)

			sw, swo := make([]int, len(subset)), make([]int, len(subset))
			for i, c := range block {
				nW, nWo := st.CoCountsSubsetInto(c, subset, sw, swo)
				if nW != bn[i] || nWo != bno[i] {
					t.Fatalf("trial %d cand %d: block partition sizes (%d,%d) != (%d,%d)",
						trial, c, bn[i], bno[i], nW, nWo)
				}
				for x := range subset {
					if bw[i][x] != sw[x] || bwo[i][x] != swo[x] {
						t.Fatalf("trial %d cand %d col %d: block counts (%d,%d) != subset (%d,%d)",
							trial, c, subset[x], bw[i][x], bwo[i][x], sw[x], swo[x])
					}
				}
			}
		}
	}
}
