package sampling

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"schemanet/internal/bitset"
	"schemanet/internal/constraints"
	"schemanet/internal/schema"
)

// keyOf renders an instance list as a sorted multiset-free key list for
// order-insensitive comparison.
func keysOf(instances []*bitset.Set) []string {
	keys := make([]string, len(instances))
	for i, inst := range instances {
		keys[i] = inst.Key()
	}
	sort.Strings(keys)
	return keys
}

// TestPropertyFilterInstancesMatchesReenumeration is the correctness
// proof of the exact inference's incremental maintenance, checked on
// random networks: starting from the full enumeration, applying a random
// assertion sequence through FilterInstances yields — after every step —
// exactly the instance set a fresh EnumerateAll under the accumulated
// feedback produces. Approvals are pure filters; disapprovals surface
// the stripped survivors the re-enumeration finds.
func TestPropertyFilterInstancesMatchesReenumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 12; trial++ {
		e, _ := tinyNetwork(t, rng)
		n := e.Network().NumCandidates()
		instances, err := EnumerateAll(e, nil, nil, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		// Own the list: FilterInstances mutates it.
		list := make([]*bitset.Set, len(instances))
		for i, inst := range instances {
			list[i] = inst.Clone()
		}
		approved, disapproved := bitset.New(n), bitset.New(n)
		order := rng.Perm(n)
		for _, c := range order[:n/2+1] {
			approve := rng.Intn(2) == 0
			if approve {
				approved.Add(c)
			} else {
				disapproved.Add(c)
			}
			list = FilterInstances(list, c, approve, func(inst *bitset.Set) bool {
				return e.Maximal(inst, disapproved)
			})
			want, err := EnumerateAll(e, approved, disapproved, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			got, exp := keysOf(list), keysOf(want)
			if len(got) != len(exp) {
				t.Fatalf("trial %d after asserting %d (approve=%v): %d instances, re-enumeration has %d",
					trial, c, approve, len(got), len(exp))
			}
			for i := range got {
				if got[i] != exp[i] {
					t.Fatalf("trial %d after asserting %d (approve=%v): instance sets differ",
						trial, c, approve)
				}
			}
		}
	}
}

// TestStoreApplyAssertionExactConsistency: the exact maintenance path
// must leave the store's columnar matrix, counts, and probabilities
// identical to a store rebuilt from the same filtered list — and keep
// completeness, in both assertion directions.
func TestStoreApplyAssertionExactConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 8; trial++ {
		e, _ := tinyNetwork(t, rng)
		n := e.Network().NumCandidates()
		instances, err := EnumerateAll(e, nil, nil, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		st := NewStore(n, 4)
		for _, inst := range instances {
			st.Add(inst)
		}
		st.MarkComplete()
		disapproved := bitset.New(n)
		for _, c := range rng.Perm(n)[:n/2] {
			approve := rng.Intn(2) == 0
			if !approve {
				disapproved.Add(c)
			}
			st.ApplyAssertionExact(c, approve, func(inst *bitset.Set) bool {
				return e.Maximal(inst, disapproved)
			})
			if !st.Complete() {
				t.Fatalf("trial %d: exact maintenance revoked completeness", trial)
			}
			// Rebuild a reference store from the surviving instances and
			// compare every probability and partition count.
			ref := NewStore(n, 4)
			st.ForEachInstance(func(inst *bitset.Set) bool {
				if !ref.Add(inst) {
					t.Fatalf("trial %d: exact maintenance kept a duplicate instance", trial)
				}
				return true
			})
			for d := 0; d < n; d++ {
				if got, want := st.Probability(d), ref.Probability(d); got != want {
					t.Fatalf("trial %d: p(%d) = %v, rebuilt store says %v", trial, d, got, want)
				}
				gw, gwo := st.Partition(d)
				rw, rwo := ref.Partition(d)
				if gw != rw || gwo != rwo {
					t.Fatalf("trial %d: partition(%d) = (%d,%d), rebuilt (%d,%d)", trial, d, gw, gwo, rw, rwo)
				}
			}
		}
	}
}

// TestEnumerateWorkBound: a budgeted enumeration must give up — with
// the classifiable overflow error — after O(limit) work even when the
// subset lattice the search walks dwarfs both the limit and the true
// instance count, and any ErrTooManyInstances value must match any
// other under errors.Is regardless of the Limit it carries.
func TestEnumerateWorkBound(t *testing.T) {
	// A wide conflict-free network: every candidate is independent, so
	// there is exactly ONE maximal instance (all candidates) but the
	// lattice has 2^64 subsets. Without the work bound a limit-1 call
	// would walk forever; with it, it must return the overflow error
	// after ~enumWorkFactor·1 + enumWorkFloor nodes.
	e := newWideIndependentNet(t, 64)
	if _, err := EnumerateAll(e, nil, nil, 1); !errors.Is(err, ErrTooManyInstances{}) {
		t.Fatalf("err = %v, want ErrTooManyInstances from the work bound", err)
	}
	// Unbounded enumeration of the same space would be infeasible — that
	// is exactly what limit 0 promises not to guard against — so only
	// check that a generous limit with an adequate work budget succeeds
	// on a small variant.
	small := newWideIndependentNet(t, 8)
	out, err := EnumerateAll(small, nil, nil, 1<<10)
	if err != nil {
		t.Fatalf("small net: %v", err)
	}
	if len(out) != 1 || out[0].Count() != 8 {
		t.Fatalf("small net: got %d instances, want the single all-candidates instance", len(out))
	}
	if !errors.Is(ErrTooManyInstances{Limit: 3}, ErrTooManyInstances{Limit: 99}) {
		t.Fatal("ErrTooManyInstances values must match under errors.Is regardless of Limit")
	}
}

// newWideIndependentNet builds a 2-schema network with w disjoint
// candidate correspondences (no shared attributes → no one-to-one
// conflicts, no schema cycles → no cycle violations).
func newWideIndependentNet(t testing.TB, w int) *constraints.Engine {
	t.Helper()
	b := schema.NewBuilder()
	names := func(prefix string) []string {
		out := make([]string, w)
		for i := range out {
			out[i] = prefix + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		return out
	}
	s1 := b.AddSchema("L", names("l")...)
	s2 := b.AddSchema("R", names("r")...)
	b.Connect(s1, s2)
	for i := 0; i < w; i++ {
		b.AddCorrespondence(schema.AttrID(i), schema.AttrID(w+i), 0.9)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return constraints.Default(net)
}
