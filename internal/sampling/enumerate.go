package sampling

import (
	"fmt"

	"schemanet/internal/bitset"
	"schemanet/internal/constraints"
)

// ErrTooManyInstances is returned by EnumerateAll when the instance
// count exceeds the caller's limit.
type ErrTooManyInstances struct{ Limit int }

func (e ErrTooManyInstances) Error() string {
	return fmt.Sprintf("sampling: more than %d matching instances", e.Limit)
}

// EnumerateAll returns every matching instance of the network under the
// given feedback: all maximal consistent subsets of the candidates that
// include approved and exclude disapproved (Definition 1). The search is
// exponential in the number of candidates; it powers the exact
// probabilities of Equation 1 and the Figure 7 experiment, where
// |C| ≤ 20. limit caps the number of instances (0 means no cap).
//
// If the approved set is itself inconsistent, no instance exists and an
// empty slice is returned.
func EnumerateAll(e *constraints.Engine, approved, disapproved *bitset.Set, limit int) ([]*bitset.Set, error) {
	return EnumerateWithin(e, approved, disapproved, nil, limit)
}

// EnumerateWithin is EnumerateAll restricted to one constraint-connected
// component: it returns every maximal consistent subset of the `within`
// candidates that includes approved ∩ within and excludes disapproved.
// Maximality is relative to the component — candidates outside `within`
// are treated as excluded, which matches global maximality because
// constraints never couple candidates across components (see
// Engine.Components). within nil means the whole universe, making
// EnumerateAll the trivial restriction.
func EnumerateWithin(e *constraints.Engine, approved, disapproved, within *bitset.Set, limit int) ([]*bitset.Set, error) {
	n := e.Network().NumCandidates()
	// excluded = disapproved ∪ ¬within bounds the maximality check (the
	// restricted approved set is rebuilt inline below during the
	// consistency check, so only the exclusion half is needed here).
	_, excluded := FeedbackWithin(n, nil, disapproved, within, nil, nil)
	base := e.NewInstance()
	if approved != nil {
		// Verify the (restricted) approved set is self-consistent while
		// building it.
		ok := true
		approved.ForEach(func(c int) bool {
			if within != nil && !within.Has(c) {
				return true
			}
			if e.HasConflict(base, c) {
				ok = false
				return false
			}
			base.Add(c)
			return true
		})
		if !ok {
			return nil, nil
		}
	}

	// Free candidates: tracked, not asserted either way.
	var free []int
	addFree := func(c int) bool {
		if !base.Has(c) && (disapproved == nil || !disapproved.Has(c)) {
			free = append(free, c)
		}
		return true
	}
	if within != nil {
		within.ForEach(addFree)
	} else {
		for c := 0; c < n; c++ {
			addFree(c)
		}
	}

	var out []*bitset.Set
	var overflow error
	cur := base.Clone()

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(free) {
			if e.Maximal(cur, excluded) {
				if limit > 0 && len(out) >= limit {
					overflow = ErrTooManyInstances{Limit: limit}
					return false
				}
				out = append(out, cur.Clone())
			}
			return true
		}
		c := free[i]
		// Include branch (only when consistent).
		if !e.HasConflict(cur, c) {
			cur.Add(c)
			if !rec(i + 1) {
				return false
			}
			cur.Remove(c)
		}
		// Exclude branch.
		return rec(i + 1)
	}
	rec(0)
	if overflow != nil {
		return nil, overflow
	}
	return out, nil
}

// ExactProbabilities computes Equation 1 directly: for every candidate,
// the fraction of all matching instances that contain it. It returns the
// probabilities and the instance count. When no instance exists, all
// probabilities are zero.
func ExactProbabilities(e *constraints.Engine, approved, disapproved *bitset.Set, limit int) ([]float64, int, error) {
	instances, err := EnumerateAll(e, approved, disapproved, limit)
	if err != nil {
		return nil, 0, err
	}
	probs := make([]float64, e.Network().NumCandidates())
	if len(instances) == 0 {
		return probs, 0, nil
	}
	for _, inst := range instances {
		inst.ForEach(func(c int) bool {
			probs[c]++
			return true
		})
	}
	for c := range probs {
		probs[c] /= float64(len(instances))
	}
	return probs, len(instances), nil
}
