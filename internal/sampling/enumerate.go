package sampling

import (
	"fmt"

	"schemanet/internal/bitset"
	"schemanet/internal/constraints"
)

// ErrTooManyInstances is returned by EnumerateAll when the instance
// count exceeds the caller's limit — or when the search burns through
// the work bound derived from it (see EnumerateWithin): either way the
// instance space does not fit the budget.
type ErrTooManyInstances struct{ Limit int }

func (e ErrTooManyInstances) Error() string {
	return fmt.Sprintf("sampling: more than %d matching instances", e.Limit)
}

// Is makes any ErrTooManyInstances value match any other under
// errors.Is, regardless of the Limit it carries — callers classify the
// overflow, they don't care which budget tripped it.
func (e ErrTooManyInstances) Is(target error) bool {
	_, ok := target.(ErrTooManyInstances)
	return ok
}

// Enumeration work bound: a limit > 0 also caps the branch-and-bound
// search at enumWorkFactor·limit + enumWorkFloor recursion nodes, so a
// budgeted call costs O(limit) even when the instance space (or the
// consistent-subset lattice the search walks) is astronomically larger.
// The floor keeps tiny budgets from starving legitimately twisty small
// components; the factor is deliberately tight — the hybrid inference
// retries its promotion probe as a component shrinks, so a failing
// probe must stay cheap (leaves pay a member-scan maximality check on
// top of the node count).
const (
	enumWorkFactor = 8
	enumWorkFloor  = 1024
)

// EnumerateAll returns every matching instance of the network under the
// given feedback: all maximal consistent subsets of the candidates that
// include approved and exclude disapproved (Definition 1). The search is
// exponential in the number of candidates; it powers the exact
// probabilities of Equation 1 and the Figure 7 experiment, where
// |C| ≤ 20. limit caps the number of instances (0 means no cap).
//
// If the approved set is itself inconsistent, no instance exists and an
// empty slice is returned.
func EnumerateAll(e *constraints.Engine, approved, disapproved *bitset.Set, limit int) ([]*bitset.Set, error) {
	return EnumerateWithin(e, approved, disapproved, nil, limit)
}

// EnumerateWithin is EnumerateAll restricted to one constraint-connected
// component: it returns every maximal consistent subset of the `within`
// candidates that includes approved ∩ within and excludes disapproved.
// Maximality is relative to the component — candidates outside `within`
// are treated as excluded, which matches global maximality because
// constraints never couple candidates across components (see
// Engine.Components). within nil means the whole universe, making
// EnumerateAll the trivial restriction.
//
// A limit > 0 bounds both the instance count and the search work (see
// enumWorkFactor): exceeding either returns ErrTooManyInstances, so a
// budgeted probe — the hybrid inference's promotion attempt — is O(limit)
// no matter how large the component's subset lattice is.
func EnumerateWithin(e *constraints.Engine, approved, disapproved, within *bitset.Set, limit int) ([]*bitset.Set, error) {
	n := e.Network().NumCandidates()
	// excluded = disapproved ∪ ¬within bounds the maximality check (the
	// restricted approved set is rebuilt inline below during the
	// consistency check, so only the exclusion half is needed here).
	_, excluded := FeedbackWithin(n, nil, disapproved, within, nil, nil)
	base := e.NewInstance()
	if approved != nil {
		// Verify the (restricted) approved set is self-consistent while
		// building it.
		ok := true
		approved.ForEach(func(c int) bool {
			if within != nil && !within.Has(c) {
				return true
			}
			if e.HasConflict(base, c) {
				ok = false
				return false
			}
			base.Add(c)
			return true
		})
		if !ok {
			return nil, nil
		}
	}

	// Free candidates: tracked, not asserted either way, not retired
	// (retired candidates can never join an instance, matching the
	// retired-mask block in Maximize/Maximal).
	net := e.Network()
	var free []int
	addFree := func(c int) bool {
		if !base.Has(c) && (disapproved == nil || !disapproved.Has(c)) && !net.Retired(c) {
			free = append(free, c)
		}
		return true
	}
	if within != nil {
		within.ForEach(addFree)
	} else {
		for c := 0; c < n; c++ {
			addFree(c)
		}
	}

	var out []*bitset.Set
	var overflow error
	cur := base.Clone()

	work, maxWork := 0, 0
	if limit > 0 {
		maxWork = enumWorkFactor*limit + enumWorkFloor
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if maxWork > 0 {
			if work++; work > maxWork {
				overflow = ErrTooManyInstances{Limit: limit}
				return false
			}
		}
		if i == len(free) {
			if e.Maximal(cur, excluded) {
				if limit > 0 && len(out) >= limit {
					overflow = ErrTooManyInstances{Limit: limit}
					return false
				}
				out = append(out, cur.Clone())
			}
			return true
		}
		c := free[i]
		// Include branch (only when consistent).
		if !e.HasConflict(cur, c) {
			cur.Add(c)
			if !rec(i + 1) {
				return false
			}
			cur.Remove(c)
		}
		// Exclude branch.
		return rec(i + 1)
	}
	rec(0)
	if overflow != nil {
		return nil, overflow
	}
	return out, nil
}

// ExactProbabilities computes Equation 1 directly: for every candidate,
// the fraction of all matching instances that contain it. It returns the
// probabilities and the instance count. When no instance exists, all
// probabilities are zero.
//
// Every call enumerates from scratch. A caller that applies a *sequence*
// of assertions to one instance space should enumerate once and maintain
// the list with FilterInstances instead — that is how the exact
// inference backend of core.PMN stays O(instances) per assertion.
func ExactProbabilities(e *constraints.Engine, approved, disapproved *bitset.Set, limit int) ([]float64, int, error) {
	instances, err := EnumerateAll(e, approved, disapproved, limit)
	if err != nil {
		return nil, 0, err
	}
	return ProbabilitiesOf(instances, e.Network().NumCandidates()), len(instances), nil
}

// ProbabilitiesOf computes the Equation 1 probabilities over a
// materialized instance list: for every candidate of an n-sized
// universe, the fraction of instances containing it. All zeros when the
// list is empty.
func ProbabilitiesOf(instances []*bitset.Set, n int) []float64 {
	probs := make([]float64, n)
	if len(instances) == 0 {
		return probs
	}
	for _, inst := range instances {
		inst.ForEach(func(c int) bool {
			probs[c]++
			return true
		})
	}
	for c := range probs {
		probs[c] /= float64(len(instances))
	}
	return probs
}

// FilterInstances is the shared instance-filter kernel of exact view
// maintenance: given the complete matching-instance list Ω under some
// feedback F (distinct maximal consistent subsets, per EnumerateWithin),
// it returns the complete list under F extended with one assertion of c
// — without re-enumerating.
//
//   - Approving keeps exactly the instances containing c: maximality
//     does not depend on F+, so the maximal consistent supersets of
//     F+ ∪ {c} are precisely the old instances that contain c.
//   - Disapproving keeps the instances without c, plus each instance
//     containing c *stripped* of it when the remainder is maximal once c
//     joins the excluded set. Those stripped survivors are exactly the
//     previously non-maximal sets that excluding c surfaces: any new
//     instance J was blocked only by c (J ∪ {c} consistent, all other
//     extensions were already blocked), and the maximal extension of
//     J ∪ {c} in the old list is J ∪ {c} itself — consistency is
//     downward-closed, so a strictly larger extension would contradict
//     J's new maximality. Hence every new instance is old-instance∖{c},
//     and the isMaximal probe (Engine.Maximal against the updated
//     exclusions) selects which strips qualify. Results are
//     deduplicated by fingerprint with an Equal check on collision.
//
// The returned slice reuses the backing array of instances (dropped
// tail entries are nilled out), and stripped instances are mutated in
// place — the caller must own the list.
func FilterInstances(instances []*bitset.Set, c int, approve bool, isMaximal func(*bitset.Set) bool) []*bitset.Set {
	kept := instances[:0]
	if approve {
		for _, inst := range instances {
			if inst.Has(c) {
				kept = append(kept, inst)
			}
		}
	} else {
		index := make(map[uint64][]int, len(instances))
		add := func(inst *bitset.Set) {
			fp := inst.Fingerprint()
			for _, i := range index[fp] {
				if kept[i].Equal(inst) {
					return
				}
			}
			index[fp] = append(index[fp], len(kept))
			kept = append(kept, inst)
		}
		for _, inst := range instances {
			if !inst.Has(c) {
				add(inst)
				continue
			}
			inst.Remove(c)
			if isMaximal(inst) {
				add(inst)
			}
		}
	}
	for i := len(kept); i < len(instances); i++ {
		instances[i] = nil
	}
	return kept
}
