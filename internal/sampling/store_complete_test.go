package sampling

import (
	"math/rand"
	"testing"

	"schemanet/internal/bitset"
	"schemanet/internal/constraints"
	"schemanet/internal/datagen"
)

// TestApplyAssertionClearsCompletenessWhenEmptied is the regression
// test for the silent-dead-end bug: a store marked complete (e.g. after
// two under-n_min samplings) and then emptied by an assertion must
// revoke completeness so NeedsResample turns true again. Before the
// fix, an approval that wiped the store left Complete() true — all
// probabilities 0, entropy 0, NeedsResample false — and the session
// looked "done" with no way to recover.
func TestApplyAssertionClearsCompletenessWhenEmptied(t *testing.T) {
	st := NewStore(4, 100)
	st.Add(bitset.FromIndices(4, 0, 1))
	st.Add(bitset.FromIndices(4, 0, 2))
	st.MarkComplete()
	if st.NeedsResample() {
		t.Fatal("complete store must not need resampling")
	}

	// Approving candidate 3 keeps no instance: the store empties.
	st.ApplyAssertion(3, true)
	if st.Size() != 0 {
		t.Fatalf("store size = %d, want 0", st.Size())
	}
	if st.Complete() {
		t.Fatal("emptied store must revoke completeness")
	}
	if !st.NeedsResample() {
		t.Fatal("emptied store must need resampling")
	}
}

// TestApplyAssertionKeepsCompletenessOnApproval: the complement case —
// an approval that keeps a non-empty instance subset preserves
// completeness (filtering a complete Ω* by an assertion yields the
// complete Ω* of the restricted space).
func TestApplyAssertionKeepsCompletenessOnApproval(t *testing.T) {
	st := NewStore(4, 100)
	st.Add(bitset.FromIndices(4, 0, 1))
	st.Add(bitset.FromIndices(4, 0, 2))
	st.MarkComplete()
	st.ApplyAssertion(0, true)
	if st.Size() != 2 {
		t.Fatalf("store size = %d, want 2", st.Size())
	}
	if !st.Complete() {
		t.Fatal("non-emptying approval must preserve completeness")
	}
}

// componentFixture builds a random network, partitions it, and returns
// the engine plus the partition (skipping the trial when the partition
// is trivial).
func componentFixture(t *testing.T, seed int64, size int) (*constraints.Engine, *constraints.Partition) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, err := datagen.SyntheticNetwork(datagen.Scale(datagen.BP(), 0.3),
		datagen.DefaultSyntheticOpts(size), rng)
	if err != nil {
		t.Fatal(err)
	}
	e := constraints.Default(d.Network)
	return e, e.Components()
}

// TestComponentStoreMatchesFullStore: sampling one component into a
// component store and the same instances into a full-universe store
// must agree on probabilities, partitions, and co-occurrence counts of
// the component's members.
func TestComponentStoreMatchesFullStore(t *testing.T) {
	e, parts := componentFixture(t, 31, 60)
	if parts.Trivial() {
		t.Skip("trivial partition; component-store comparison is vacuous")
	}
	n := e.Network().NumCandidates()
	local := make([]int32, n)
	for k := 0; k < parts.NumComponents(); k++ {
		for j, c := range parts.Members(k) {
			local[c] = int32(j)
		}
	}
	rng := rand.New(rand.NewSource(32))
	smp := NewSampler(e, DefaultConfig(), rng)
	for k := 0; k < parts.NumComponents(); k++ {
		members := parts.Members(k)
		mask := bitset.FromIndices(n, members...)
		cst := NewComponentStore(n, 50, members, local)
		smp.SampleWithin(cst, nil, nil, mask, 80)

		full := NewStore(n, 50)
		cst.ForEachInstance(func(inst *bitset.Set) bool {
			full.Add(inst)
			return true
		})
		if cst.Size() != full.Size() {
			t.Fatalf("component %d: sizes differ %d vs %d", k, cst.Size(), full.Size())
		}
		if cst.TrackedCount() != len(members) {
			t.Fatalf("component %d: tracked %d, want %d", k, cst.TrackedCount(), len(members))
		}
		for j, c := range members {
			if cst.GlobalID(j) != c {
				t.Fatalf("component %d: GlobalID(%d) = %d, want %d", k, j, cst.GlobalID(j), c)
			}
			if got, want := cst.Probability(c), full.Probability(c); got != want {
				t.Fatalf("component %d: p(%d) = %v, want %v", k, c, got, want)
			}
			w1, wo1 := cst.Partition(c)
			w2, wo2 := full.Partition(c)
			if w1 != w2 || wo1 != wo2 {
				t.Fatalf("component %d: Partition(%d) = (%d,%d), want (%d,%d)", k, c, w1, wo1, w2, wo2)
			}
		}
		// Column-indexed co-occurrence counts agree with the reference
		// CondCounts of the same store.
		for _, c := range members {
			with, without, nWith, nWithout := cst.CoCounts(c)
			refWith, totWith := cst.CondCounts(c, true)
			refWithout, totWithout := cst.CondCounts(c, false)
			if nWith != totWith || nWithout != totWithout {
				t.Fatalf("component %d: totals (%d,%d) vs reference (%d,%d)", k, nWith, nWithout, totWith, totWithout)
			}
			for j := range with {
				if with[j] != refWith[j] || without[j] != refWithout[j] {
					t.Fatalf("component %d: CoCounts(%d) col %d = (%d,%d), reference (%d,%d)",
						k, c, j, with[j], without[j], refWith[j], refWithout[j])
				}
			}
		}
		// Probabilities of untracked candidates read 0.
		for c := 0; c < n; c++ {
			if !cst.Tracks(c) && cst.Probability(c) != 0 {
				t.Fatalf("component %d: untracked p(%d) = %v, want 0", k, c, cst.Probability(c))
			}
		}
	}
}

// TestComponentStoreRejectsForeignInstance: adding an instance holding
// a candidate outside the member set must panic — it would silently
// corrupt another component's columns otherwise.
func TestComponentStoreRejectsForeignInstance(t *testing.T) {
	local := []int32{0, 1, 0, 1}
	st := NewComponentStore(4, 10, []int{0, 1}, local)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for foreign instance")
		}
	}()
	st.Add(bitset.FromIndices(4, 0, 2))
}

// TestSampleWithinStaysInComponent: every instance the restricted walk
// emits is a subset of the component, maximal relative to it, and
// consistent.
func TestSampleWithinStaysInComponent(t *testing.T) {
	e, parts := componentFixture(t, 41, 60)
	if parts.Trivial() {
		t.Skip("trivial partition")
	}
	n := e.Network().NumCandidates()
	local := make([]int32, n)
	for k := 0; k < parts.NumComponents(); k++ {
		for j, c := range parts.Members(k) {
			local[c] = int32(j)
		}
	}
	rng := rand.New(rand.NewSource(42))
	smp := NewSampler(e, DefaultConfig(), rng)
	for k := 0; k < parts.NumComponents(); k++ {
		members := parts.Members(k)
		mask := bitset.FromIndices(n, members...)
		notMask := bitset.New(n)
		notMask.SetAll()
		notMask.DifferenceWith(mask)
		st := NewComponentStore(n, 30, members, local)
		smp.SampleWithin(st, nil, nil, mask, 50)
		if st.Size() == 0 {
			t.Fatalf("component %d: no instances sampled", k)
		}
		st.ForEachInstance(func(inst *bitset.Set) bool {
			if !mask.ContainsAll(inst) {
				t.Fatalf("component %d: instance %v leaves the component", k, inst)
			}
			if !e.Consistent(inst) {
				t.Fatalf("component %d: inconsistent instance %v", k, inst)
			}
			if !e.Maximal(inst, notMask) {
				t.Fatalf("component %d: instance %v not maximal within the component", k, inst)
			}
			return true
		})
	}
}

// TestEnumerateWithinFactorizes: the per-component enumerations of a
// multi-component network multiply out to the global enumeration — the
// instance-space product structure the decomposed PMN relies on — and
// per-component probabilities equal the global exact probabilities.
func TestEnumerateWithinFactorizes(t *testing.T) {
	e, parts := componentFixture(t, 51, 40)
	if parts.Trivial() {
		t.Skip("trivial partition")
	}
	n := e.Network().NumCandidates()
	global, err := EnumerateAll(e, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	product := 1
	globalProbs, _, err := ExactProbabilities(e, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < parts.NumComponents(); k++ {
		mask := bitset.FromIndices(n, parts.Members(k)...)
		sub, err := EnumerateWithin(e, nil, nil, mask, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) == 0 {
			t.Fatalf("component %d: no instances", k)
		}
		product *= len(sub)
		// Per-component frequency equals the global exact probability.
		for _, c := range parts.Members(k) {
			cnt := 0
			for _, inst := range sub {
				if inst.Has(c) {
					cnt++
				}
			}
			got := float64(cnt) / float64(len(sub))
			if want := globalProbs[c]; got != want {
				t.Fatalf("component %d: p(%d) = %v, global exact %v", k, c, got, want)
			}
		}
	}
	if product != len(global) {
		t.Fatalf("Π |Ω_k| = %d, global |Ω| = %d", product, len(global))
	}
}
