package sampling

import (
	"math"
	"math/rand"
	"testing"

	"schemanet/internal/bitset"
	"schemanet/internal/constraints"
	"schemanet/internal/datagen"
	"schemanet/internal/schema"
)

// tinyNetwork builds a random small network for cross-validation between
// the sampler and the exact enumerator.
func tinyNetwork(t testing.TB, rng *rand.Rand) (*constraints.Engine, *schema.Dataset) {
	t.Helper()
	d, err := datagen.SyntheticNetwork(datagen.Profile{
		Name: "tiny", Domain: datagen.BusinessPartner(),
		NumSchemas: 3, MinAttrs: 4, MaxAttrs: 6, PoolFactor: 1.4,
		SynonymProb: 0.2, AbbrevProb: 0.15,
	}, datagen.SyntheticOpts{
		TargetCount: 10 + rng.Intn(6), Precision: 0.6, ConflictBias: 0.7, StrictCount: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return constraints.Default(d.Network), d
}

// TestPropertySamplesAreInstances verifies the sampler's fundamental
// contract on random networks: every emitted sample is a matching
// instance (consistent + maximal, Definition 1) and appears in the
// exact enumeration.
func TestPropertySamplesAreInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		e, _ := tinyNetwork(t, rng)
		all, err := EnumerateAll(e, nil, nil, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		universe := make(map[string]bool, len(all))
		for _, inst := range all {
			universe[inst.Key()] = true
		}
		s := NewSampler(e, DefaultConfig(), rng)
		store := s.Sample(nil, nil, 80)
		store.ForEachInstance(func(inst *bitset.Set) bool {
			if !universe[inst.Key()] {
				t.Errorf("trial %d: sampled %v is not a matching instance", trial, inst)
			}
			return true
		})
	}
}

// TestPropertySamplerCoverage: on tiny networks, a modest sampling
// budget must discover the large majority of the instance space (the
// quantity that drives Figure 7).
func TestPropertySamplerCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	totalInstances, totalFound := 0, 0
	for trial := 0; trial < 8; trial++ {
		e, _ := tinyNetwork(t, rng)
		all, err := EnumerateAll(e, nil, nil, 1<<20)
		if err != nil || len(all) == 0 {
			continue
		}
		s := NewSampler(e, DefaultConfig(), rng)
		store := s.Sample(nil, nil, 200)
		totalInstances += len(all)
		totalFound += store.Size()
	}
	if totalInstances == 0 {
		t.Skip("no instances generated")
	}
	coverage := float64(totalFound) / float64(totalInstances)
	t.Logf("aggregate coverage: %d/%d = %.2f", totalFound, totalInstances, coverage)
	if coverage < 0.6 {
		t.Fatalf("coverage %.2f too low", coverage)
	}
}

// TestPropertyViewMaintenanceMatchesReenumeration: after an approval,
// filtering the complete store must give exactly the enumeration under
// the updated feedback (the §III-B approval-exactness claim).
func TestPropertyViewMaintenanceApproval(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 6; trial++ {
		e, _ := tinyNetwork(t, rng)
		n := e.Network().NumCandidates()
		all, err := EnumerateAll(e, nil, nil, 1<<20)
		if err != nil || len(all) == 0 {
			continue
		}
		store := NewStore(n, 1)
		for _, inst := range all {
			store.Add(inst)
		}
		store.MarkComplete()

		// Pick a candidate present in some but not all instances.
		c := -1
		for cand := 0; cand < n; cand++ {
			with, without := store.Partition(cand)
			if with > 0 && without > 0 {
				c = cand
				break
			}
		}
		if c < 0 {
			continue
		}
		store.ApplyAssertion(c, true)

		approved := bitset.FromIndices(n, c)
		want, err := EnumerateAll(e, approved, nil, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if store.Size() != len(want) {
			t.Fatalf("trial %d: filtered store has %d instances, enumeration %d",
				trial, store.Size(), len(want))
		}
		wantKeys := make(map[string]bool, len(want))
		for _, inst := range want {
			wantKeys[inst.Key()] = true
		}
		store.ForEachInstance(func(inst *bitset.Set) bool {
			if !wantKeys[inst.Key()] {
				t.Errorf("trial %d: filtered instance %v not in re-enumeration", trial, inst)
			}
			return true
		})
	}
}

// TestPropertyExactProbabilitiesSumRule: Σ_c p_c equals the mean
// instance size (both count instance-membership pairs).
func TestPropertyExactProbabilitiesSumRule(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 6; trial++ {
		e, _ := tinyNetwork(t, rng)
		probs, count, err := ExactProbabilities(e, nil, nil, 1<<20)
		if err != nil || count == 0 {
			continue
		}
		all, err := EnumerateAll(e, nil, nil, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		sumP := 0.0
		for _, p := range probs {
			sumP += p
		}
		sumSize := 0
		for _, inst := range all {
			sumSize += inst.Count()
		}
		meanSize := float64(sumSize) / float64(len(all))
		if math.Abs(sumP-meanSize) > 1e-9 {
			t.Fatalf("trial %d: Σp = %v, mean instance size = %v", trial, sumP, meanSize)
		}
	}
}

// TestPropertyDisapprovalSupersets: every instance enumerated under a
// disapproval is a superset-maximal set that would have been consistent
// before; i.e. it is consistent under no feedback too (anti-monotone
// constraints).
func TestPropertyDisapprovalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 6; trial++ {
		e, _ := tinyNetwork(t, rng)
		n := e.Network().NumCandidates()
		c := rng.Intn(n)
		disapproved := bitset.FromIndices(n, c)
		insts, err := EnumerateAll(e, nil, disapproved, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range insts {
			if inst.Has(c) {
				t.Fatalf("trial %d: instance contains disapproved candidate", trial)
			}
			if !e.Consistent(inst) {
				t.Fatalf("trial %d: inconsistent instance under disapproval", trial)
			}
			if !e.Maximal(inst, disapproved) {
				t.Fatalf("trial %d: non-maximal instance under disapproval", trial)
			}
		}
	}
}
