package sampling

import (
	"math"
	"math/rand"
	"testing"

	"schemanet/internal/bitset"
	"schemanet/internal/constraints"
	"schemanet/internal/datagen"
	"schemanet/internal/schema"
)

// tinyNetwork builds a random small network for cross-validation between
// the sampler and the exact enumerator.
func tinyNetwork(t testing.TB, rng *rand.Rand) (*constraints.Engine, *schema.Dataset) {
	t.Helper()
	d, err := datagen.SyntheticNetwork(datagen.Profile{
		Name: "tiny", Domain: datagen.BusinessPartner(),
		NumSchemas: 3, MinAttrs: 4, MaxAttrs: 6, PoolFactor: 1.4,
		SynonymProb: 0.2, AbbrevProb: 0.15,
	}, datagen.SyntheticOpts{
		TargetCount: 10 + rng.Intn(6), Precision: 0.6, ConflictBias: 0.7, StrictCount: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return constraints.Default(d.Network), d
}

// TestPropertySamplesAreInstances verifies the sampler's fundamental
// contract on random networks: every emitted sample is a matching
// instance (consistent + maximal, Definition 1) and appears in the
// exact enumeration.
func TestPropertySamplesAreInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		e, _ := tinyNetwork(t, rng)
		all, err := EnumerateAll(e, nil, nil, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		universe := make(map[string]bool, len(all))
		for _, inst := range all {
			universe[inst.Key()] = true
		}
		s := NewSampler(e, DefaultConfig(), rng)
		store := s.Sample(nil, nil, 80)
		store.ForEachInstance(func(inst *bitset.Set) bool {
			if !universe[inst.Key()] {
				t.Errorf("trial %d: sampled %v is not a matching instance", trial, inst)
			}
			return true
		})
	}
}

// TestPropertySamplerCoverage: on tiny networks, a modest sampling
// budget must discover the large majority of the instance space (the
// quantity that drives Figure 7).
func TestPropertySamplerCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	totalInstances, totalFound := 0, 0
	for trial := 0; trial < 8; trial++ {
		e, _ := tinyNetwork(t, rng)
		all, err := EnumerateAll(e, nil, nil, 1<<20)
		if err != nil || len(all) == 0 {
			continue
		}
		s := NewSampler(e, DefaultConfig(), rng)
		store := s.Sample(nil, nil, 200)
		totalInstances += len(all)
		totalFound += store.Size()
	}
	if totalInstances == 0 {
		t.Skip("no instances generated")
	}
	coverage := float64(totalFound) / float64(totalInstances)
	t.Logf("aggregate coverage: %d/%d = %.2f", totalFound, totalInstances, coverage)
	if coverage < 0.6 {
		t.Fatalf("coverage %.2f too low", coverage)
	}
}

// TestPropertyViewMaintenanceMatchesReenumeration: after an approval,
// filtering the complete store must give exactly the enumeration under
// the updated feedback (the §III-B approval-exactness claim).
func TestPropertyViewMaintenanceApproval(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 6; trial++ {
		e, _ := tinyNetwork(t, rng)
		n := e.Network().NumCandidates()
		all, err := EnumerateAll(e, nil, nil, 1<<20)
		if err != nil || len(all) == 0 {
			continue
		}
		store := NewStore(n, 1)
		for _, inst := range all {
			store.Add(inst)
		}
		store.MarkComplete()

		// Pick a candidate present in some but not all instances.
		c := -1
		for cand := 0; cand < n; cand++ {
			with, without := store.Partition(cand)
			if with > 0 && without > 0 {
				c = cand
				break
			}
		}
		if c < 0 {
			continue
		}
		store.ApplyAssertion(c, true)

		approved := bitset.FromIndices(n, c)
		want, err := EnumerateAll(e, approved, nil, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if store.Size() != len(want) {
			t.Fatalf("trial %d: filtered store has %d instances, enumeration %d",
				trial, store.Size(), len(want))
		}
		wantKeys := make(map[string]bool, len(want))
		for _, inst := range want {
			wantKeys[inst.Key()] = true
		}
		store.ForEachInstance(func(inst *bitset.Set) bool {
			if !wantKeys[inst.Key()] {
				t.Errorf("trial %d: filtered instance %v not in re-enumeration", trial, inst)
			}
			return true
		})
	}
}

// TestPropertyExactProbabilitiesSumRule: Σ_c p_c equals the mean
// instance size (both count instance-membership pairs).
func TestPropertyExactProbabilitiesSumRule(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 6; trial++ {
		e, _ := tinyNetwork(t, rng)
		probs, count, err := ExactProbabilities(e, nil, nil, 1<<20)
		if err != nil || count == 0 {
			continue
		}
		all, err := EnumerateAll(e, nil, nil, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		sumP := 0.0
		for _, p := range probs {
			sumP += p
		}
		sumSize := 0
		for _, inst := range all {
			sumSize += inst.Count()
		}
		meanSize := float64(sumSize) / float64(len(all))
		if math.Abs(sumP-meanSize) > 1e-9 {
			t.Fatalf("trial %d: Σp = %v, mean instance size = %v", trial, sumP, meanSize)
		}
	}
}

// randomSubset draws a random subset of [0, n) with the given bit
// density. The store's contracts (dedup, counts, view maintenance,
// columnar co-occurrence counts) do not depend on members being real
// matching instances, so random subsets exercise them more broadly.
func randomSubset(rng *rand.Rand, n int, density float64) *bitset.Set {
	s := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Add(i)
		}
	}
	return s
}

// checkStoreAgainstNaive asserts that every derived view of the store —
// the columnar CoCounts, Partition, and Probabilities — agrees exactly
// with a naive row-major recomputation over the held instances.
func checkStoreAgainstNaive(t *testing.T, st *Store) {
	t.Helper()
	n := st.NumCandidates()

	// Naive ground truth from the instance list.
	naiveCounts := make([]int, n)
	size := 0
	st.ForEachInstance(func(inst *bitset.Set) bool {
		size++
		inst.ForEach(func(c int) bool {
			naiveCounts[c]++
			return true
		})
		return true
	})
	if size != st.Size() {
		t.Fatalf("ForEachInstance visited %d instances, Size() = %d", size, st.Size())
	}

	for c := 0; c < n; c++ {
		with, without, nWith, nWithout := st.CoCounts(c)
		wantWith, wantNWith := st.CondCounts(c, true)
		wantWithout, wantNWithout := st.CondCounts(c, false)
		if nWith != wantNWith || nWithout != wantNWithout {
			t.Fatalf("cand %d: partition sizes (%d, %d), naive (%d, %d)",
				c, nWith, nWithout, wantNWith, wantNWithout)
		}
		for d := 0; d < n; d++ {
			if with[d] != wantWith[d] {
				t.Fatalf("cand %d: with[%d] = %d, naive %d", c, d, with[d], wantWith[d])
			}
			if without[d] != wantWithout[d] {
				t.Fatalf("cand %d: without[%d] = %d, naive %d", c, d, without[d], wantWithout[d])
			}
		}
		pw, pwo := st.Partition(c)
		if pw != nWith || pwo != nWithout {
			t.Fatalf("cand %d: Partition (%d, %d) disagrees with CoCounts (%d, %d)",
				c, pw, pwo, nWith, nWithout)
		}
		if pw != naiveCounts[c] {
			t.Fatalf("cand %d: count %d, naive %d", c, pw, naiveCounts[c])
		}
		var wantP float64
		if size > 0 {
			wantP = float64(naiveCounts[c]) / float64(size)
		}
		if got := st.Probability(c); got != wantP {
			t.Fatalf("cand %d: probability %v, naive %v", c, got, wantP)
		}
	}
	probs := st.Probabilities()
	for c := 0; c < n; c++ {
		if probs[c] != st.Probability(c) {
			t.Fatalf("Probabilities()[%d] = %v, Probability = %v", c, probs[c], st.Probability(c))
		}
	}
}

// TestPropertyCoCountsMatchNaiveScan: under random Add/ApplyAssertion
// workloads, the columnar CoCounts must be bit-identical to the naive
// row-major CondCounts scan, and Partition/Probabilities must stay
// consistent with a recomputation from scratch.
func TestPropertyCoCountsMatchNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(80) // crosses the 64-bit word boundary often
		st := NewStore(n, 1)
		for round := 0; round < 3; round++ {
			adds := 20 + rng.Intn(100)
			var prev *bitset.Set
			for i := 0; i < adds; i++ {
				inst := randomSubset(rng, n, 0.1+0.5*rng.Float64())
				st.Add(inst)
				if prev != nil && rng.Intn(4) == 0 {
					if st.Add(prev) {
						t.Fatalf("trial %d: duplicate Add reported new", trial)
					}
				}
				prev = inst
			}
			checkStoreAgainstNaive(t, st)

			// Assert a candidate that keeps a non-empty store when
			// possible, so later rounds still exercise compaction.
			c := rng.Intn(n)
			with, without := st.Partition(c)
			approve := with >= without
			if rng.Intn(4) == 0 {
				approve = !approve // occasionally wipe most of the store
			}
			st.ApplyAssertion(c, approve)
			if w, wo := st.Partition(c); (approve && wo != 0) || (!approve && w != 0) {
				t.Fatalf("trial %d: assertion left excluded instances: with=%d without=%d approve=%v",
					trial, w, wo, approve)
			}
			checkStoreAgainstNaive(t, st)
		}
	}
}

// TestPropertyStoreAddAfterCompaction: Add must keep the columnar matrix
// and fingerprint dedup coherent when instances arrive after assertions
// shrank the store (rows are renumbered by compaction).
func TestPropertyStoreAddAfterCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 10; trial++ {
		n := 66 + rng.Intn(30)
		st := NewStore(n, 1)
		for i := 0; i < 150; i++ {
			st.Add(randomSubset(rng, n, 0.3))
			if i%40 == 39 {
				st.ApplyAssertion(rng.Intn(n), rng.Intn(2) == 0)
			}
		}
		checkStoreAgainstNaive(t, st)
	}
}

// TestPropertyDisapprovalSupersets: every instance enumerated under a
// disapproval is a superset-maximal set that would have been consistent
// before; i.e. it is consistent under no feedback too (anti-monotone
// constraints).
func TestPropertyDisapprovalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 6; trial++ {
		e, _ := tinyNetwork(t, rng)
		n := e.Network().NumCandidates()
		c := rng.Intn(n)
		disapproved := bitset.FromIndices(n, c)
		insts, err := EnumerateAll(e, nil, disapproved, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range insts {
			if inst.Has(c) {
				t.Fatalf("trial %d: instance contains disapproved candidate", trial)
			}
			if !e.Consistent(inst) {
				t.Fatalf("trial %d: inconsistent instance under disapproval", trial)
			}
			if !e.Maximal(inst, disapproved) {
				t.Fatalf("trial %d: non-maximal instance under disapproval", trial)
			}
		}
	}
}
