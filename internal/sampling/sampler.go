// Package sampling implements §III of the paper: estimating
// correspondence probabilities by sampling matching instances. It
// provides the non-uniform sampler of Algorithm 3 (random walk with
// simulated-annealing acceptance), an exact enumerator of all matching
// instances for small networks (Equation 1 / Figure 7), and a sample
// store with view maintenance under user assertions (§III-B).
package sampling

import (
	"math"
	"math/rand"

	"schemanet/internal/bitset"
	"schemanet/internal/constraints"
)

// Config parameterizes the sampler. The Anneal and Maximize switches
// exist for the ablation benches; the paper's algorithm corresponds to
// both being true.
type Config struct {
	// WalkSteps is k of Algorithm 3: random-walk steps per emitted
	// sample.
	WalkSteps int
	// NMin is the view-maintenance tolerance threshold n_min of §III-B.
	NMin int
	// Anneal enables the simulated-annealing acceptance probability
	// 1 − e^{−Δ}; when false every proposed move is accepted (plain
	// random walk), which tends to stay inside one sample region.
	Anneal bool
	// Maximize saturates each sample to maximality (Definition 1).
	Maximize bool
	// RestartProb is the probability that an emission starts a fresh
	// walk from a randomized maximal instance instead of continuing the
	// current chain. Restarts are a standard local-search diversification
	// that raises instance-space coverage — the quantity that governs
	// the quality of the Equation 2 estimate (see DESIGN.md).
	RestartProb float64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{WalkSteps: 4, NMin: 200, Anneal: true, Maximize: true, RestartProb: 0.5}
}

// Sampler draws matching instances for one network and constraint set.
// A Sampler is not safe for concurrent use (it owns an rng and reuses
// walk scratch buffers).
type Sampler struct {
	engine   *constraints.Engine
	cfg      Config
	rng      *rand.Rand
	freeMask *bitset.Set // scratch: C \ F− \ I as a mask, reused across walk steps
}

// NewSampler builds a sampler. rng must not be nil.
func NewSampler(engine *constraints.Engine, cfg Config, rng *rand.Rand) *Sampler {
	if cfg.WalkSteps <= 0 {
		cfg.WalkSteps = DefaultConfig().WalkSteps
	}
	if cfg.NMin <= 0 {
		cfg.NMin = DefaultConfig().NMin
	}
	return &Sampler{engine: engine, cfg: cfg, rng: rng}
}

// Config returns the sampler's configuration.
func (s *Sampler) Config() Config { return s.cfg }

// freeCandidates recomputes the sampler's free mask C \ F− \ I — the
// candidates eligible for a walk move — as three word-wise passes over
// the scratch bitset and returns its population count. A uniform move is
// then freeMask.NthMember(rng.Intn(count)): the same candidate the old
// slice-based scan would have picked, without the O(C) append loop.
func (s *Sampler) freeCandidates(inst, disapproved *bitset.Set) int {
	if s.freeMask == nil {
		s.freeMask = s.engine.NewInstance()
	}
	s.freeMask.SetAll()
	s.freeMask.DifferenceWith(inst)
	if disapproved != nil {
		s.freeMask.DifferenceWith(disapproved)
	}
	return s.freeMask.Count()
}

// SampleInto runs Algorithm 3 for n emitted samples, adding each to the
// store. The walk starts from the store's last instance when available,
// otherwise from the approved set (I0 ← F+, saturated when Maximize is
// on).
func (s *Sampler) SampleInto(store *Store, approved, disapproved *bitset.Set, n int) {
	fresh := func() *bitset.Set {
		inst := s.engine.NewInstance()
		if approved != nil {
			inst.UnionWith(approved)
		}
		if s.cfg.Maximize {
			s.engine.Maximize(inst, disapproved, s.rng)
		}
		return inst
	}
	cur := store.LastInstance()
	if cur == nil {
		cur = fresh()
	} else {
		cur = cur.Clone()
	}

	next := cur.Clone()
	for i := 0; i < n; i++ {
		if i > 0 && s.rng.Float64() < s.cfg.RestartProb {
			cur = fresh()
			next = cur.Clone()
		}
		for j := 0; j < s.cfg.WalkSteps; j++ {
			nFree := s.freeCandidates(cur, disapproved)
			if nFree == 0 {
				break
			}
			c := s.freeMask.NthMember(s.rng.Intn(nFree))
			next.CopyFrom(cur)
			s.engine.Repair(next, c, approved)
			if s.cfg.Maximize {
				s.engine.Maximize(next, disapproved, s.rng)
			}
			delta := cur.SymmetricDiffCount(next)
			accept := true
			if s.cfg.Anneal {
				accept = s.rng.Float64() < 1-math.Exp(-float64(delta))
			}
			if accept {
				cur, next = next, cur
			}
		}
		store.Add(cur)
	}
}

// Sample is a convenience that creates a fresh store and fills it with n
// samples.
func (s *Sampler) Sample(approved, disapproved *bitset.Set, n int) *Store {
	store := NewStore(s.engine.Network().NumCandidates(), s.cfg.NMin)
	s.SampleInto(store, approved, disapproved, n)
	return store
}
