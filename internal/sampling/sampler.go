// Package sampling implements §III of the paper: estimating
// correspondence probabilities by sampling matching instances. It
// provides the non-uniform sampler of Algorithm 3 (random walk with
// simulated-annealing acceptance), an exact enumerator of all matching
// instances for small networks (Equation 1 / Figure 7), and a sample
// store with view maintenance under user assertions (§III-B).
package sampling

import (
	"math"
	"math/rand"

	"schemanet/internal/bitset"
	"schemanet/internal/constraints"
)

// Config parameterizes the sampler. The Anneal and Maximize switches
// exist for the ablation benches; the paper's algorithm corresponds to
// both being true.
type Config struct {
	// WalkSteps is k of Algorithm 3: random-walk steps per emitted
	// sample.
	WalkSteps int
	// NMin is the view-maintenance tolerance threshold n_min of §III-B.
	NMin int
	// Anneal enables the simulated-annealing acceptance probability
	// 1 − e^{−Δ}; when false every proposed move is accepted (plain
	// random walk), which tends to stay inside one sample region.
	Anneal bool
	// Maximize saturates each sample to maximality (Definition 1).
	Maximize bool
	// RestartProb is the probability that an emission starts a fresh
	// walk from a randomized maximal instance instead of continuing the
	// current chain. Restarts are a standard local-search diversification
	// that raises instance-space coverage — the quantity that governs
	// the quality of the Equation 2 estimate (see DESIGN.md).
	RestartProb float64
	// StagnationLimit ends a sampling round early after this many
	// consecutive emissions that discovered no new distinct instance.
	// 0 means unset: the sampler never stops early, but the decomposed
	// PMN substitutes a component-scaled default for its component
	// samplers. Negative disables early stopping unconditionally. A
	// saturated round ends "below n_min" just as a full round would, so
	// the §III-B completeness conclusion is unchanged — the limit only
	// stops paying for emissions that demonstrably cannot add coverage
	// (a small component's entire instance space saturates within a few
	// dozen emissions).
	StagnationLimit int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{WalkSteps: 4, NMin: 200, Anneal: true, Maximize: true, RestartProb: 0.5}
}

// Sampler draws matching instances for one network and constraint set.
// A Sampler is not safe for concurrent use (it owns an rng and reuses
// walk scratch buffers, and the engine's Maximize/Repair primitives
// reuse engine-owned scratch). Distinct samplers over distinct engine
// forks (Engine.Fork) with distinct rngs may run concurrently — the
// decomposed PMN gives each component such a sampler, which is what
// makes component-disjoint assertions parallelizable.
type Sampler struct {
	engine   *constraints.Engine
	cfg      Config
	rng      *rand.Rand
	freeMask *bitset.Set // scratch: eligible-move mask, reused across walk steps
	exclMask *bitset.Set // scratch: ¬within ∪ F− for component-restricted walks
	aprMask  *bitset.Set // scratch: F+ ∩ within for component-restricted walks
}

// NewSampler builds a sampler. rng must not be nil.
func NewSampler(engine *constraints.Engine, cfg Config, rng *rand.Rand) *Sampler {
	if cfg.WalkSteps <= 0 {
		cfg.WalkSteps = DefaultConfig().WalkSteps
	}
	if cfg.NMin <= 0 {
		cfg.NMin = DefaultConfig().NMin
	}
	return &Sampler{engine: engine, cfg: cfg, rng: rng}
}

// Config returns the sampler's configuration.
func (s *Sampler) Config() Config { return s.cfg }

// ResetScratch drops the sampler's lazily allocated scratch masks so the
// next walk re-derives them from the engine at the current universe
// size. Callers must invoke it after the candidate universe grows.
func (s *Sampler) ResetScratch() {
	s.freeMask, s.exclMask, s.aprMask = nil, nil, nil
}

// FeedbackWithin derives the component-restricted form of the feedback
// masks shared by every restricted operation (SampleWithin,
// EnumerateWithin, the instantiation heuristic): aprOut = F+ ∩ within
// and exclOut = ¬within ∪ F−. A nil within means no restriction and
// returns (approved, disapproved) unchanged. When non-nil, aprBuf and
// exclBuf are reused as destinations (capacity n); otherwise fresh sets
// are allocated. aprOut is nil when approved is nil.
func FeedbackWithin(n int, approved, disapproved, within, aprBuf, exclBuf *bitset.Set) (aprOut, exclOut *bitset.Set) {
	if within == nil {
		return approved, disapproved
	}
	if exclBuf == nil {
		exclBuf = bitset.New(n)
	}
	exclBuf.SetAll()
	exclBuf.DifferenceWith(within)
	if disapproved != nil {
		exclBuf.UnionWith(disapproved)
	}
	if approved == nil {
		return nil, exclBuf
	}
	if aprBuf == nil {
		aprBuf = bitset.New(n)
	}
	aprBuf.CopyFrom(approved)
	aprBuf.IntersectWith(within)
	return aprBuf, exclBuf
}

// freeCandidates recomputes the sampler's free mask — the candidates
// eligible for a walk move: within \ I \ excluded (within nil means the
// whole universe) — as word-wise passes over the scratch bitset and
// returns its population count. A uniform move is then
// freeMask.NthMember(rng.Intn(count)): the same candidate a slice-based
// scan would have picked, without the O(C) append loop.
func (s *Sampler) freeCandidates(inst, excluded, within *bitset.Set) int {
	if s.freeMask == nil {
		s.freeMask = s.engine.NewInstance()
	}
	if within != nil {
		s.freeMask.CopyFrom(within)
	} else {
		s.freeMask.SetAll()
	}
	s.freeMask.DifferenceWith(inst)
	if excluded != nil {
		s.freeMask.DifferenceWith(excluded)
	}
	return s.freeMask.Count()
}

// SampleInto runs Algorithm 3 for n emitted samples, adding each to the
// store. The walk starts from the store's last instance when available,
// otherwise from the approved set (I0 ← F+, saturated when Maximize is
// on).
func (s *Sampler) SampleInto(store *Store, approved, disapproved *bitset.Set, n int) {
	s.SampleWithin(store, approved, disapproved, nil, n)
}

// SampleWithin is SampleInto restricted to one constraint-connected
// component: the walk only ever moves on candidates of `within`, the
// repairs and saturations exclude everything outside it, and the
// emitted instances are maximal consistent subsets of the component's
// candidates. Because constraints never couple candidates across
// components (see Engine.Components), the restricted walk samples the
// component's factor of the instance space exactly as the global walk
// samples the product. within nil means the whole universe, making
// SampleInto the trivial restriction.
func (s *Sampler) SampleWithin(store *Store, approved, disapproved, within *bitset.Set, n int) {
	// The walk excludes ¬within ∪ F− everywhere it would exclude F−
	// alone, and seeds from F+ ∩ within instead of F+. Both masks (and
	// the member list driving the restricted saturation order) are
	// fixed for the whole call, so they are computed once into scratch.
	var members []int
	if within != nil {
		// The component store already caches its member list (and its Add
		// panics on instances outside it, so tracked ⊇ within is
		// guaranteed wherever the combination is usable); fall back to
		// deriving the list from the mask for full-universe stores.
		if members = store.TrackedMembers(); members == nil {
			members = within.Members()
		}
		if s.exclMask == nil {
			s.exclMask = s.engine.NewInstance()
		}
		if s.aprMask == nil && approved != nil {
			s.aprMask = s.engine.NewInstance()
		}
	}
	apr, excluded := FeedbackWithin(s.engine.Network().NumCandidates(),
		approved, disapproved, within, s.aprMask, s.exclMask)
	fresh := func() *bitset.Set {
		inst := s.engine.NewInstance()
		if apr != nil {
			inst.UnionWith(apr)
		}
		if s.cfg.Maximize {
			s.engine.MaximizeWithin(inst, excluded, members, s.rng)
		}
		return inst
	}
	cur := store.LastInstance()
	if cur == nil {
		cur = fresh()
	} else {
		cur = cur.Clone()
	}

	next := cur.Clone()
	stale := 0
	for i := 0; i < n; i++ {
		if i > 0 && s.rng.Float64() < s.cfg.RestartProb {
			cur = fresh()
			next = cur.Clone()
		}
		for j := 0; j < s.cfg.WalkSteps; j++ {
			nFree := s.freeCandidates(cur, excluded, within)
			if nFree == 0 {
				break
			}
			c := s.freeMask.NthMember(s.rng.Intn(nFree))
			next.CopyFrom(cur)
			s.engine.Repair(next, c, apr)
			if s.cfg.Maximize {
				s.engine.MaximizeWithin(next, excluded, members, s.rng)
			}
			delta := cur.SymmetricDiffCount(next)
			accept := true
			if s.cfg.Anneal {
				accept = s.rng.Float64() < 1-math.Exp(-float64(delta))
			}
			if accept {
				cur, next = next, cur
			}
		}
		if store.Add(cur) {
			stale = 0
		} else if stale++; s.cfg.StagnationLimit > 0 && stale >= s.cfg.StagnationLimit {
			return
		}
	}
}

// Sample is a convenience that creates a fresh store and fills it with n
// samples.
func (s *Sampler) Sample(approved, disapproved *bitset.Set, n int) *Store {
	store := NewStore(s.engine.Network().NumCandidates(), s.cfg.NMin)
	s.SampleInto(store, approved, disapproved, n)
	return store
}
