package sampling

import (
	"math"
	"math/rand"
	"testing"

	"schemanet/internal/bitset"
	"schemanet/internal/constraints"
	"schemanet/internal/schema"
)

// buildVideoNet reconstructs the §II-A example network; see the
// constraints package tests for the candidate layout. Its four matching
// instances are {c1,c2,c3}, {c1,c4,c5}, {c2,c5}, {c3,c4}.
func buildVideoNet(t testing.TB) (*constraints.Engine, map[string]int) {
	t.Helper()
	b := schema.NewBuilder()
	b.AddSchema("EoverI", "productionDate")
	b.AddSchema("BBC", "date")
	b.AddSchema("DVDizzy", "releaseDate", "screenDate")
	b.ConnectAll()
	b.AddCorrespondence(0, 1, 0.9)
	b.AddCorrespondence(1, 2, 0.8)
	b.AddCorrespondence(0, 2, 0.7)
	b.AddCorrespondence(1, 3, 0.6)
	b.AddCorrespondence(0, 3, 0.5)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{
		"c1": net.CandidateIndex(0, 1),
		"c2": net.CandidateIndex(1, 2),
		"c3": net.CandidateIndex(0, 2),
		"c4": net.CandidateIndex(1, 3),
		"c5": net.CandidateIndex(0, 3),
	}
	return constraints.Default(net), idx
}

func TestEnumerateAllVideoNetwork(t *testing.T) {
	e, idx := buildVideoNet(t)
	instances, err := EnumerateAll(e, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 4 {
		t.Fatalf("enumerated %d instances, want 4", len(instances))
	}
	want := map[string]bool{
		bitset.FromIndices(5, idx["c1"], idx["c2"], idx["c3"]).Key(): true,
		bitset.FromIndices(5, idx["c1"], idx["c4"], idx["c5"]).Key(): true,
		bitset.FromIndices(5, idx["c2"], idx["c5"]).Key():            true,
		bitset.FromIndices(5, idx["c3"], idx["c4"]).Key():            true,
	}
	for _, inst := range instances {
		if !want[inst.Key()] {
			t.Errorf("unexpected instance %v", inst)
		}
		if !e.Consistent(inst) || !e.Maximal(inst, nil) {
			t.Errorf("instance %v not maximal consistent", inst)
		}
	}
}

func TestEnumerateAllWithFeedback(t *testing.T) {
	e, idx := buildVideoNet(t)
	n := e.Network().NumCandidates()

	t.Run("approve c1", func(t *testing.T) {
		approved := bitset.FromIndices(n, idx["c1"])
		instances, err := EnumerateAll(e, approved, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(instances) != 2 {
			t.Fatalf("got %d instances, want 2", len(instances))
		}
		for _, inst := range instances {
			if !inst.Has(idx["c1"]) {
				t.Errorf("instance %v missing approved c1", inst)
			}
		}
	})

	t.Run("disapprove c1", func(t *testing.T) {
		disapproved := bitset.FromIndices(n, idx["c1"])
		instances, err := EnumerateAll(e, nil, disapproved, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Without c1 the cycle constraint can never fire (c1 is the only
		// candidate on the SA-SB edge), so the instances are the maximal
		// independent sets of the 1-1 conflict graph on {c2..c5}:
		// {c2,c3}, {c2,c5}, {c3,c4}, {c4,c5}. Note {c2,c3} and {c4,c5}
		// are maximal only *because* c1 is excluded — the disapproval
		// view-maintenance subtlety of DESIGN.md.
		if len(instances) != 4 {
			t.Fatalf("got %d instances, want 4", len(instances))
		}
		for _, inst := range instances {
			if inst.Has(idx["c1"]) {
				t.Errorf("instance %v contains disapproved c1", inst)
			}
			if inst.Count() != 2 {
				t.Errorf("instance %v has %d members, want 2", inst, inst.Count())
			}
		}
	})

	t.Run("conflicting approvals yield nothing", func(t *testing.T) {
		// c3 and c5 violate one-to-one; approving both is unsatisfiable.
		approved := bitset.FromIndices(n, idx["c3"], idx["c5"])
		instances, err := EnumerateAll(e, approved, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(instances) != 0 {
			t.Fatalf("got %d instances for inconsistent approvals, want 0", len(instances))
		}
	})
}

func TestEnumerateAllLimit(t *testing.T) {
	e, _ := buildVideoNet(t)
	if _, err := EnumerateAll(e, nil, nil, 2); err == nil {
		t.Fatal("want ErrTooManyInstances with limit 2")
	} else if _, ok := err.(ErrTooManyInstances); !ok {
		t.Fatalf("wrong error type: %v", err)
	}
}

func TestExactProbabilitiesVideoNetwork(t *testing.T) {
	e, idx := buildVideoNet(t)
	probs, count, err := ExactProbabilities(e, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("instance count = %d, want 4", count)
	}
	// Every candidate appears in exactly 2 of the 4 instances.
	for name, c := range idx {
		if math.Abs(probs[c]-0.5) > 1e-9 {
			t.Errorf("p(%s) = %v, want 0.5", name, probs[c])
		}
	}
}

func TestExactProbabilitiesWithApproval(t *testing.T) {
	e, idx := buildVideoNet(t)
	n := e.Network().NumCandidates()
	approved := bitset.FromIndices(n, idx["c2"])
	probs, count, err := ExactProbabilities(e, approved, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Instances containing c2: {c1,c2,c3} and {c2,c5}.
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if probs[idx["c2"]] != 1 {
		t.Errorf("p(c2) = %v, want 1", probs[idx["c2"]])
	}
	if probs[idx["c4"]] != 0 {
		t.Errorf("p(c4) = %v, want 0", probs[idx["c4"]])
	}
	if math.Abs(probs[idx["c1"]]-0.5) > 1e-9 {
		t.Errorf("p(c1) = %v, want 0.5", probs[idx["c1"]])
	}
}

func TestStoreAddDedupAndCounts(t *testing.T) {
	st := NewStore(5, 10)
	a := bitset.FromIndices(5, 0, 1)
	b := bitset.FromIndices(5, 2)
	if !st.Add(a) {
		t.Fatal("first Add should report new")
	}
	if st.Add(a.Clone()) {
		t.Fatal("duplicate Add should report not-new")
	}
	st.Add(b)
	if st.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (the store is a set)", st.Size())
	}
	if got := st.Probability(0); got != 0.5 {
		t.Fatalf("P(0) = %v, want 0.5", got)
	}
	if got := st.Probability(4); got != 0 {
		t.Fatalf("P(4) = %v, want 0", got)
	}
	with, without := st.Partition(0)
	if with != 1 || without != 1 {
		t.Fatalf("Partition = %d/%d, want 1/1", with, without)
	}
}

func TestStoreEmptyProbability(t *testing.T) {
	st := NewStore(3, 10)
	if got := st.Probability(0); got != 0 {
		t.Fatalf("empty store probability = %v, want 0", got)
	}
	if st.LastInstance() != nil {
		t.Fatal("LastInstance on empty store should be nil")
	}
}

func TestStoreApplyAssertionApprove(t *testing.T) {
	st := NewStore(5, 10)
	st.Add(bitset.FromIndices(5, 0, 1))
	st.Add(bitset.FromIndices(5, 1, 2))
	st.Add(bitset.FromIndices(5, 3))
	st.MarkComplete()
	st.ApplyAssertion(1, true)
	if st.Size() != 2 {
		t.Fatalf("Size after approval = %d, want 2", st.Size())
	}
	if got := st.Probability(1); got != 1 {
		t.Fatalf("P(1) = %v, want 1 after approval", got)
	}
	if got := st.Probability(3); got != 0 {
		t.Fatalf("P(3) = %v, want 0", got)
	}
	if !st.Complete() {
		t.Fatal("approval filtering must preserve completeness")
	}
}

func TestStoreApplyAssertionDisapprove(t *testing.T) {
	st := NewStore(5, 10)
	st.Add(bitset.FromIndices(5, 0, 1))
	st.Add(bitset.FromIndices(5, 2))
	st.MarkComplete()
	st.ApplyAssertion(1, false)
	if st.Size() != 1 {
		t.Fatalf("Size after disapproval = %d, want 1", st.Size())
	}
	if st.Complete() {
		t.Fatal("disapproval must clear completeness (new maximal instances may exist)")
	}
	// The removed instance can be re-added after filtering.
	if !st.Add(bitset.FromIndices(5, 0)) {
		t.Fatal("index should have forgotten the removed instance")
	}
}

func TestStoreNeedsResample(t *testing.T) {
	st := NewStore(3, 2)
	if !st.NeedsResample() {
		t.Fatal("empty store below nmin should need resampling")
	}
	st.Add(bitset.FromIndices(3, 0))
	st.Add(bitset.FromIndices(3, 1))
	if st.NeedsResample() {
		t.Fatal("store at nmin should not need resampling")
	}
	st.ApplyAssertion(0, false)
	if !st.NeedsResample() {
		t.Fatal("store below nmin should need resampling")
	}
	st.MarkComplete()
	if st.NeedsResample() {
		t.Fatal("complete store never needs resampling")
	}
}

func TestStoreCondCounts(t *testing.T) {
	st := NewStore(4, 10)
	st.Add(bitset.FromIndices(4, 0, 1))
	st.Add(bitset.FromIndices(4, 0, 2))
	st.Add(bitset.FromIndices(4, 3))
	counts, total := st.CondCounts(0, true)
	if total != 2 {
		t.Fatalf("with-total = %d, want 2", total)
	}
	if counts[1] != 1 || counts[2] != 1 || counts[3] != 0 {
		t.Fatalf("with-counts = %v", counts)
	}
	counts, total = st.CondCounts(0, false)
	if total != 1 || counts[3] != 1 {
		t.Fatalf("without partition wrong: total=%d counts=%v", total, counts)
	}
}

func TestSamplerProducesMaximalConsistentInstances(t *testing.T) {
	e, _ := buildVideoNet(t)
	rng := rand.New(rand.NewSource(1))
	s := NewSampler(e, DefaultConfig(), rng)
	store := s.Sample(nil, nil, 100)
	if store.Size() == 0 {
		t.Fatal("no samples produced")
	}
	store.ForEachInstance(func(inst *bitset.Set) bool {
		if !e.Consistent(inst) {
			t.Errorf("inconsistent sample %v", inst)
		}
		if !e.Maximal(inst, nil) {
			t.Errorf("non-maximal sample %v", inst)
		}
		return true
	})
}

func TestSamplerCoversAllInstancesOfSmallNetwork(t *testing.T) {
	e, _ := buildVideoNet(t)
	rng := rand.New(rand.NewSource(2))
	s := NewSampler(e, DefaultConfig(), rng)
	store := s.Sample(nil, nil, 200)
	if store.DistinctSize() != 4 {
		t.Fatalf("store holds %d distinct instances, want all 4", store.DistinctSize())
	}
	exact, _, err := ExactProbabilities(e, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All four instances found → the set-based estimate is exact.
	for c, p := range store.Probabilities() {
		if math.Abs(p-exact[c]) > 1e-9 {
			t.Errorf("p(%d) = %v, exact %v", c, p, exact[c])
		}
	}
}

func TestSamplerRespectsFeedback(t *testing.T) {
	e, idx := buildVideoNet(t)
	n := e.Network().NumCandidates()
	rng := rand.New(rand.NewSource(3))
	s := NewSampler(e, DefaultConfig(), rng)
	approved := bitset.FromIndices(n, idx["c1"])
	disapproved := bitset.FromIndices(n, idx["c2"])
	store := s.Sample(approved, disapproved, 150)
	if store.Size() == 0 {
		t.Fatal("no samples")
	}
	store.ForEachInstance(func(inst *bitset.Set) bool {
		if !inst.Has(idx["c1"]) {
			t.Errorf("sample %v missing approved c1", inst)
		}
		if inst.Has(idx["c2"]) {
			t.Errorf("sample %v contains disapproved c2", inst)
		}
		return true
	})
	// The instances satisfying both assertions are {c1,c4,c5} and
	// {c1,c3} (the latter is maximal because c4 opens the cycle with
	// {c1,c3} and c5 conflicts with c3). The sampler must find both.
	if store.DistinctSize() != 2 {
		t.Errorf("store holds %d distinct instances, want 2", store.DistinctSize())
	}
	if p := store.Probability(idx["c1"]); p != 1 {
		t.Errorf("p(c1) = %v, want 1", p)
	}
	if p := store.Probability(idx["c2"]); p != 0 {
		t.Errorf("p(c2) = %v, want 0", p)
	}
	if p := store.Probability(idx["c4"]); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("p(c4) = %v, want 0.5", p)
	}
}

func TestSamplerDeterministicUnderSeed(t *testing.T) {
	e, _ := buildVideoNet(t)
	run := func(seed int64) []float64 {
		s := NewSampler(e, DefaultConfig(), rand.New(rand.NewSource(seed)))
		return s.Sample(nil, nil, 60).Probabilities()
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probability %d differs under same seed: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSamplerCompiledEngineMatchesInterpreted is the end-to-end
// differential over Algorithm 3: under the same seed, the walk driven by
// the compiled conflict index must emit bit-for-bit the same sample
// stream as the interpreted reference engine.
func TestSamplerCompiledEngineMatchesInterpreted(t *testing.T) {
	_, idx := buildVideoNet(t)
	e, _ := buildVideoNet(t)
	net := e.Network()
	run := func(eng *constraints.Engine, seed int64) []*bitset.Set {
		s := NewSampler(eng, DefaultConfig(), rand.New(rand.NewSource(seed)))
		approved := bitset.FromIndices(net.NumCandidates(), idx["c1"])
		disapproved := bitset.FromIndices(net.NumCandidates(), idx["c4"])
		store := s.Sample(approved, disapproved, 80)
		var out []*bitset.Set
		store.ForEachInstance(func(inst *bitset.Set) bool {
			out = append(out, inst.Clone())
			return true
		})
		return out
	}
	for seed := int64(1); seed <= 5; seed++ {
		a := run(constraints.Default(net), seed)
		b := run(constraints.DefaultInterpreted(net), seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: store sizes differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("seed %d: instance %d diverged: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

func TestSamplerWithoutMaximize(t *testing.T) {
	// Even without the maximality saturation the samples stay consistent
	// (the ablation configuration must not crash or emit garbage).
	e, _ := buildVideoNet(t)
	cfg := DefaultConfig()
	cfg.Maximize = false
	s := NewSampler(e, cfg, rand.New(rand.NewSource(5)))
	store := s.Sample(nil, nil, 50)
	store.ForEachInstance(func(inst *bitset.Set) bool {
		if !e.Consistent(inst) {
			t.Errorf("inconsistent sample %v", inst)
		}
		return true
	})
}

func TestSamplerOnLargerRandomNetwork(t *testing.T) {
	// A sanity run on a generated network: samples must be maximal
	// consistent and probabilities within [0,1].
	rng := rand.New(rand.NewSource(11))
	b := schema.NewBuilder()
	names := func(prefix string, k int) []string {
		out := make([]string, k)
		for i := range out {
			out[i] = prefix + string(rune('a'+i))
		}
		return out
	}
	b.AddSchema("s0", names("x", 6)...)
	b.AddSchema("s1", names("y", 6)...)
	b.AddSchema("s2", names("z", 6)...)
	b.ConnectAll()
	// Dense random candidates.
	for a := 0; a < 6; a++ {
		for bb := 0; bb < 6; bb++ {
			if rng.Float64() < 0.4 {
				b.AddCorrespondence(schema.AttrID(a), schema.AttrID(6+bb), rng.Float64())
			}
			if rng.Float64() < 0.4 {
				b.AddCorrespondence(schema.AttrID(6+a), schema.AttrID(12+bb), rng.Float64())
			}
			if rng.Float64() < 0.4 {
				b.AddCorrespondence(schema.AttrID(a), schema.AttrID(12+bb), rng.Float64())
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := constraints.Default(net)
	s := NewSampler(e, DefaultConfig(), rng)
	store := s.Sample(nil, nil, 120)
	if store.Size() < 2 {
		t.Fatalf("suspiciously few distinct instances: %d", store.Size())
	}
	checked := 0
	store.ForEachInstance(func(inst *bitset.Set) bool {
		if !e.Consistent(inst) || !e.Maximal(inst, nil) {
			t.Errorf("bad sample %v", inst)
		}
		checked++
		return checked < 30
	})
	for c, p := range store.Probabilities() {
		if p < 0 || p > 1 {
			t.Fatalf("p(%d) = %v out of range", c, p)
		}
	}
}
