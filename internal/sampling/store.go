package sampling

import "schemanet/internal/bitset"

// Store is the sample set Ω* with view maintenance (§III-B). It holds
// *distinct* matching instances: Equation 1 defines p_c over the set of
// matching instances, so the estimate (Equation 2) is the fraction of
// distinct sampled instances containing c — uniform over what sampling
// has discovered. Coverage, not multiplicity, determines the estimate's
// quality, which is why the sampler mixes restarts into its walk.
type Store struct {
	numCands  int
	nmin      int
	instances []*bitset.Set
	index     map[string]int
	counts    []int
	complete  bool
}

// NewStore returns an empty store for networks with numCands candidates
// and view-maintenance threshold nmin.
func NewStore(numCands, nmin int) *Store {
	return &Store{
		numCands: numCands,
		nmin:     nmin,
		index:    make(map[string]int),
		counts:   make([]int, numCands),
	}
}

// Add inserts a copy of inst unless an identical instance is already
// present; it reports whether the instance was new.
func (st *Store) Add(inst *bitset.Set) bool {
	key := inst.Key()
	if _, dup := st.index[key]; dup {
		return false
	}
	cp := inst.Clone()
	st.index[key] = len(st.instances)
	st.instances = append(st.instances, cp)
	cp.ForEach(func(c int) bool {
		st.counts[c]++
		return true
	})
	return true
}

// Size returns |Ω*|, the number of distinct instances held.
func (st *Store) Size() int { return len(st.instances) }

// DistinctSize is an alias of Size (the store is a set).
func (st *Store) DistinctSize() int { return len(st.instances) }

// NumCandidates returns the candidate-universe size.
func (st *Store) NumCandidates() int { return st.numCands }

// NMin returns the view-maintenance threshold.
func (st *Store) NMin() int { return st.nmin }

// LastInstance returns the most recently added instance, or nil when the
// store is empty. The sampler uses it to continue walks across
// incremental refills. The returned set must not be mutated.
func (st *Store) LastInstance() *bitset.Set {
	if len(st.instances) == 0 {
		return nil
	}
	return st.instances[len(st.instances)-1]
}

// Instance returns the i-th instance. The returned set must not be
// mutated.
func (st *Store) Instance(i int) *bitset.Set { return st.instances[i] }

// Complete reports whether the store is known to hold every matching
// instance (Ω* = Ω); probabilities are then exact per Equation 1.
func (st *Store) Complete() bool { return st.complete }

// MarkComplete records that the store holds all matching instances.
func (st *Store) MarkComplete() { st.complete = true }

// ClearComplete revokes completeness (needed after a disapproval, which
// can surface maximal instances that no previous sample subsumed; see
// DESIGN.md).
func (st *Store) ClearComplete() { st.complete = false }

// NeedsResample reports whether the store has fallen below nmin and is
// not known to be complete.
func (st *Store) NeedsResample() bool {
	return !st.complete && len(st.instances) < st.nmin
}

// ApplyAssertion performs the view-maintenance update of §III-B:
// approving c keeps only instances containing c; disapproving keeps only
// instances without c.
func (st *Store) ApplyAssertion(c int, approved bool) {
	kept := st.instances[:0]
	for _, inst := range st.instances {
		if inst.Has(c) == approved {
			kept = append(kept, inst)
		} else {
			delete(st.index, inst.Key())
			inst.ForEach(func(d int) bool {
				st.counts[d]--
				return true
			})
		}
	}
	for i := len(kept); i < len(st.instances); i++ {
		st.instances[i] = nil
	}
	st.instances = kept
	for i, inst := range st.instances {
		st.index[inst.Key()] = i
	}
	if !approved {
		st.ClearComplete()
	}
}

// Probability returns the estimated probability of candidate c
// (Equation 2): the fraction of held instances containing c. It returns
// 0 when the store is empty.
func (st *Store) Probability(c int) float64 {
	if len(st.instances) == 0 {
		return 0
	}
	return float64(st.counts[c]) / float64(len(st.instances))
}

// Probabilities returns the probability estimates for all candidates.
func (st *Store) Probabilities() []float64 {
	out := make([]float64, st.numCands)
	for c := range out {
		out[c] = st.Probability(c)
	}
	return out
}

// SmoothedProbabilities returns add-half (Krichevsky–Trofimov) smoothed
// estimates, (count + ½) / (size + 1). Finite sampling saturates raw
// frequencies at exactly 0 or 1 even when the true probability is not;
// divergence measurements against exact distributions (Figure 7) use
// the smoothed form so a single saturated estimate cannot dominate.
func (st *Store) SmoothedProbabilities() []float64 {
	out := make([]float64, st.numCands)
	n := float64(len(st.instances))
	for c := range out {
		out[c] = (float64(st.counts[c]) + 0.5) / (n + 1)
	}
	return out
}

// Partition returns how many instances contain c and how many do not.
func (st *Store) Partition(c int) (with, without int) {
	with = st.counts[c]
	return with, len(st.instances) - with
}

// CondCounts returns, for every candidate d, the number of instances
// that contain both c and d (when withC is true) or d but not c (when
// withC is false), together with the number of instances in that
// partition. The uncertainty-reduction step uses this to evaluate the
// hypothetical networks P+ and P− of Equation 4 without resampling.
func (st *Store) CondCounts(c int, withC bool) (counts []int, total int) {
	counts = make([]int, st.numCands)
	for _, inst := range st.instances {
		if inst.Has(c) != withC {
			continue
		}
		total++
		inst.ForEach(func(d int) bool {
			counts[d]++
			return true
		})
	}
	return counts, total
}

// ForEachInstance calls fn for every held instance; the sets must not be
// mutated.
func (st *Store) ForEachInstance(fn func(inst *bitset.Set) bool) {
	for _, inst := range st.instances {
		if !fn(inst) {
			return
		}
	}
}
