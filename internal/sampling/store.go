package sampling

import "schemanet/internal/bitset"

// Store is the sample set Ω* with view maintenance (§III-B). It holds
// *distinct* matching instances: Equation 1 defines p_c over the set of
// matching instances, so the estimate (Equation 2) is the fraction of
// distinct sampled instances containing c — uniform over what sampling
// has discovered. Coverage, not multiplicity, determines the estimate's
// quality, which is why the sampler mixes restarts into its walk.
//
// Alongside the row-major instance list the store maintains a
// *transposed, columnar* bit matrix: cols[c] is a word slice whose bit i
// is set iff instances[i] contains candidate c. Conditional
// co-occurrence counts — the inner loop of the information-gain ranking
// (Equations 4–5) — then collapse to word-wise AND + popcount between
// two columns, O(S/64) per candidate pair instead of O(S) (see
// DESIGN.md, "Columnar sample store").
type Store struct {
	numCands  int
	nmin      int
	instances []*bitset.Set
	fps       []uint64         // fps[i] = instances[i].Fingerprint()
	index     map[uint64][]int // fingerprint -> instance rows (collision bucket)
	counts    []int            // counts[c] = popcount(cols[c])
	cols      [][]uint64       // candidate-major, sample-minor bit matrix
	slab      []uint64         // backing array of cols: column c is slab[c*colCap:]
	colCap    int              // words of slab capacity per column
	colWords  int              // words per column in use, ceil(len(instances)/64)
	complete  bool
}

// NewStore returns an empty store for networks with numCands candidates
// and view-maintenance threshold nmin.
func NewStore(numCands, nmin int) *Store {
	return &Store{
		numCands: numCands,
		nmin:     nmin,
		index:    make(map[uint64][]int),
		counts:   make([]int, numCands),
		cols:     make([][]uint64, numCands),
	}
}

// Add inserts a copy of inst unless an identical instance is already
// present; it reports whether the instance was new. Dedup uses a 64-bit
// fingerprint index with an Equal check on collision, avoiding the
// string-key allocation a map[string]int would cost per emission.
func (st *Store) Add(inst *bitset.Set) bool {
	fp := inst.Fingerprint()
	for _, i := range st.index[fp] {
		if st.instances[i].Equal(inst) {
			return false
		}
	}
	cp := inst.Clone()
	row := len(st.instances)
	st.index[fp] = append(st.index[fp], row)
	st.instances = append(st.instances, cp)
	st.fps = append(st.fps, fp)
	st.ensureColWords(row>>6 + 1)
	w, b := row>>6, uint(row&63)
	cp.ForEach(func(c int) bool {
		st.counts[c]++
		st.cols[c][w] |= 1 << b
		return true
	})
	return true
}

// Size returns |Ω*|, the number of distinct instances held.
func (st *Store) Size() int { return len(st.instances) }

// DistinctSize is an alias of Size (the store is a set).
func (st *Store) DistinctSize() int { return len(st.instances) }

// NumCandidates returns the candidate-universe size.
func (st *Store) NumCandidates() int { return st.numCands }

// NMin returns the view-maintenance threshold.
func (st *Store) NMin() int { return st.nmin }

// LastInstance returns the most recently added instance, or nil when the
// store is empty. The sampler uses it to continue walks across
// incremental refills. The returned set must not be mutated.
func (st *Store) LastInstance() *bitset.Set {
	if len(st.instances) == 0 {
		return nil
	}
	return st.instances[len(st.instances)-1]
}

// Instance returns the i-th instance. The returned set must not be
// mutated.
func (st *Store) Instance(i int) *bitset.Set { return st.instances[i] }

// Complete reports whether the store is known to hold every matching
// instance (Ω* = Ω); probabilities are then exact per Equation 1.
func (st *Store) Complete() bool { return st.complete }

// MarkComplete records that the store holds all matching instances.
func (st *Store) MarkComplete() { st.complete = true }

// ClearComplete revokes completeness (needed after a disapproval, which
// can surface maximal instances that no previous sample subsumed; see
// DESIGN.md).
func (st *Store) ClearComplete() { st.complete = false }

// NeedsResample reports whether the store has fallen below nmin and is
// not known to be complete.
func (st *Store) NeedsResample() bool {
	return !st.complete && len(st.instances) < st.nmin
}

// ApplyAssertion performs the view-maintenance update of §III-B:
// approving c keeps only instances containing c; disapproving keeps only
// instances without c. One compaction pass rebuilds the fingerprint
// index, the columnar matrix, and the per-candidate counts.
func (st *Store) ApplyAssertion(c int, approved bool) {
	kept := st.instances[:0]
	fps := st.fps[:0]
	for k := range st.index {
		delete(st.index, k)
	}
	for i, inst := range st.instances {
		if inst.Has(c) == approved {
			fp := st.fps[i]
			st.index[fp] = append(st.index[fp], len(kept))
			kept = append(kept, inst)
			fps = append(fps, fp)
		}
	}
	for i := len(kept); i < len(st.instances); i++ {
		st.instances[i] = nil
	}
	st.instances = kept
	st.fps = fps
	st.rebuildColumns()
	if !approved {
		st.ClearComplete()
	}
}

// ensureColWords grows every column to the given word count. All
// columns share one backing slab (column c at stride colCap), so a
// capacity growth is a single allocation plus one copy per column, and
// adjacent columns stay contiguous for the ranking scan.
func (st *Store) ensureColWords(words int) {
	if words <= st.colWords {
		return
	}
	if words > st.colCap {
		newCap := st.colCap * 2
		if newCap < words {
			newCap = words
		}
		if newCap < 4 {
			newCap = 4
		}
		slab := make([]uint64, st.numCands*newCap)
		for c, col := range st.cols {
			copy(slab[c*newCap:], col)
		}
		st.slab = slab
		st.colCap = newCap
	}
	st.colWords = words
	for c := range st.cols {
		st.cols[c] = st.slab[c*st.colCap : c*st.colCap+words]
	}
}

// rebuildColumns recomputes the columnar matrix and counts from the
// (compacted) instance list. Sample rows are renumbered densely, so
// every column is rewritten.
func (st *Store) rebuildColumns() {
	words := (len(st.instances) + 63) / 64
	for i := range st.slab {
		st.slab[i] = 0
	}
	st.colWords = 0
	st.ensureColWords(words)
	for c := range st.cols {
		st.cols[c] = st.slab[c*st.colCap : c*st.colCap+words]
		st.counts[c] = 0
	}
	for i, inst := range st.instances {
		w, b := i>>6, uint(i&63)
		inst.ForEach(func(d int) bool {
			st.counts[d]++
			st.cols[d][w] |= 1 << b
			return true
		})
	}
}

// Probability returns the estimated probability of candidate c
// (Equation 2): the fraction of held instances containing c. It returns
// 0 when the store is empty.
func (st *Store) Probability(c int) float64 {
	if len(st.instances) == 0 {
		return 0
	}
	return float64(st.counts[c]) / float64(len(st.instances))
}

// Probabilities returns the probability estimates for all candidates.
func (st *Store) Probabilities() []float64 {
	out := make([]float64, st.numCands)
	for c := range out {
		out[c] = st.Probability(c)
	}
	return out
}

// SmoothedProbabilities returns add-half (Krichevsky–Trofimov) smoothed
// estimates, (count + ½) / (size + 1). Finite sampling saturates raw
// frequencies at exactly 0 or 1 even when the true probability is not;
// divergence measurements against exact distributions (Figure 7) use
// the smoothed form so a single saturated estimate cannot dominate.
func (st *Store) SmoothedProbabilities() []float64 {
	out := make([]float64, st.numCands)
	n := float64(len(st.instances))
	for c := range out {
		out[c] = (float64(st.counts[c]) + 0.5) / (n + 1)
	}
	return out
}

// Partition returns how many instances contain c and how many do not.
func (st *Store) Partition(c int) (with, without int) {
	with = st.counts[c]
	return with, len(st.instances) - with
}

// CoCounts returns, for every candidate d, how many instances contain
// both c and d (with[d]) and how many contain d but not c (without[d]),
// together with the sizes of the two partitions. It is the batched,
// columnar replacement for calling CondCounts twice: one word-wise
// AND+popcount per candidate pair, with the without-side derived as
// counts[d] − with[d].
func (st *Store) CoCounts(c int) (with, without []int, nWith, nWithout int) {
	with = make([]int, st.numCands)
	without = make([]int, st.numCands)
	nWith, nWithout = st.CoCountsInto(c, with, without)
	return with, without, nWith, nWithout
}

// CoCountsInto is CoCounts writing into caller-provided slices (len ≥
// NumCandidates each), so ranking loops can reuse scratch buffers.
func (st *Store) CoCountsInto(c int, with, without []int) (nWith, nWithout int) {
	colC := st.cols[c]
	for d := 0; d < st.numCands; d++ {
		w := bitset.AndCountWords(st.cols[d], colC)
		with[d] = w
		without[d] = st.counts[d] - w
	}
	return st.counts[c], len(st.instances) - st.counts[c]
}

// CondCounts returns, for every candidate d, the number of instances
// that contain both c and d (when withC is true) or d but not c (when
// withC is false), together with the number of instances in that
// partition. It is the naive row-major scan kept as the reference
// implementation for the columnar CoCounts; property tests cross-check
// the two. Hot paths should use CoCounts/CoCountsInto.
func (st *Store) CondCounts(c int, withC bool) (counts []int, total int) {
	counts = make([]int, st.numCands)
	for _, inst := range st.instances {
		if inst.Has(c) != withC {
			continue
		}
		total++
		inst.ForEach(func(d int) bool {
			counts[d]++
			return true
		})
	}
	return counts, total
}

// ForEachInstance calls fn for every held instance; the sets must not be
// mutated.
func (st *Store) ForEachInstance(fn func(inst *bitset.Set) bool) {
	for _, inst := range st.instances {
		if !fn(inst) {
			return
		}
	}
}
