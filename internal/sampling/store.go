package sampling

import "schemanet/internal/bitset"

// Store is the sample set Ω* with view maintenance (§III-B). It holds
// *distinct* matching instances: Equation 1 defines p_c over the set of
// matching instances, so the estimate (Equation 2) is the fraction of
// distinct sampled instances containing c — uniform over what sampling
// has discovered. Coverage, not multiplicity, determines the estimate's
// quality, which is why the sampler mixes restarts into its walk.
//
// Alongside the row-major instance list the store maintains a
// *transposed, columnar* bit matrix: cols[j] is a word slice whose bit i
// is set iff instances[i] contains the j-th tracked candidate.
// Conditional co-occurrence counts — the inner loop of the
// information-gain ranking (Equations 4–5) — then collapse to word-wise
// AND + popcount between two columns, O(S/64) per candidate pair (see
// DESIGN.md, "Columnar sample store").
//
// A store tracks either the whole candidate universe (NewStore) or one
// constraint-connected component of it (NewComponentStore). A component
// store holds the component's matching instances — maximal consistent
// subsets of the component's candidates — and materializes columns and
// counts only for its members, so the per-component slabs of a
// decomposed PMN together cost what the one monolithic slab did (see
// DESIGN.md, "Component decomposition"). Instances added to a component
// store must be subsets of the member set.
type Store struct {
	numCands   int
	nmin       int
	members    []int       // tracked candidates, ascending; nil = all
	local      []int32     // global -> column index; nil = identity. Shared, read-only.
	memberMask *bitset.Set // members as a mask; nil = all
	m          int         // number of tracked candidates
	instances  []*bitset.Set
	fps        []uint64         // fps[i] = instances[i].Fingerprint()
	index      map[uint64][]int // fingerprint -> instance rows (collision bucket)
	counts     []int            // counts[j] = popcount(cols[j]), column-indexed
	cols       [][]uint64       // candidate-major, sample-minor bit matrix, column-indexed
	slab       []uint64         // backing array of cols: column j is slab[j*colCap:]
	colCap     int              // words of slab capacity per column
	colWords   int              // words per column in use, ceil(len(instances)/64)
	complete   bool
}

// NewStore returns an empty store tracking all numCands candidates with
// view-maintenance threshold nmin.
func NewStore(numCands, nmin int) *Store {
	return &Store{
		numCands: numCands,
		nmin:     nmin,
		m:        numCands,
		index:    make(map[uint64][]int),
		counts:   make([]int, numCands),
		cols:     make([][]uint64, numCands),
	}
}

// NewComponentStore returns an empty store tracking only the given
// members (one constraint-connected component, ascending candidate
// indices). local maps every member to its column index (local[c] for
// c ∈ members); it is typically shared across all component stores of
// one PMN and must not be mutated. Instances added to the store must be
// subsets of the member set.
func NewComponentStore(numCands, nmin int, members []int, local []int32) *Store {
	mask := bitset.FromIndices(numCands, members...)
	return &Store{
		numCands:   numCands,
		nmin:       nmin,
		members:    members,
		local:      local,
		memberMask: mask,
		m:          len(members),
		index:      make(map[uint64][]int),
		counts:     make([]int, len(members)),
		cols:       make([][]uint64, len(members)),
	}
}

// GrowUniverse widens the candidate universe to n in place after the
// network gained candidates, updating the member mask, every held
// instance, and the shared global→column map. The tracked member set is
// unchanged — a store whose component membership changed must be
// rebuilt, not grown — so columns and counts stay valid as-is; only the
// fingerprint index needs recomputing, and only when the word width of
// the instance bitsets actually changed.
func (st *Store) GrowUniverse(n int, local []int32) {
	if n < st.numCands {
		panic("sampling: GrowUniverse shrinks the candidate universe")
	}
	oldWords := (st.numCands + 63) / 64
	st.numCands = n
	st.local = local
	if st.members == nil {
		// A full-universe store cannot grow: its columns are sized to
		// the universe. Callers decompose before growing.
		if n > st.m {
			panic("sampling: GrowUniverse on a full-universe store")
		}
		return
	}
	st.memberMask.Grow(n)
	for _, inst := range st.instances {
		inst.Grow(n)
	}
	if (n+63)/64 != oldWords {
		clear(st.index)
		for i, inst := range st.instances {
			fp := inst.Fingerprint()
			st.fps[i] = fp
			st.index[fp] = append(st.index[fp], i)
		}
	}
}

// columnOf returns the column index of global candidate c. Callers must
// pass a tracked candidate.
func (st *Store) columnOf(c int) int {
	if st.local == nil {
		return c
	}
	return int(st.local[c])
}

// mustTrack panics when c is not tracked by this store: the shared
// global→column map is only meaningful for this store's members, so an
// untracked index would silently read another component's column.
func (st *Store) mustTrack(c int) {
	if !st.Tracks(c) {
		panic("sampling: candidate not tracked by this component store")
	}
}

// TrackedCount returns the number of tracked candidates: NumCandidates
// for a full store, the component size for a component store.
func (st *Store) TrackedCount() int { return st.m }

// TrackedMembers returns the tracked candidates in ascending order, or
// nil when the store tracks the whole universe. The slice must not be
// mutated.
func (st *Store) TrackedMembers() []int { return st.members }

// GlobalID returns the global candidate index of column j.
func (st *Store) GlobalID(j int) int {
	if st.members == nil {
		return j
	}
	return st.members[j]
}

// Tracks reports whether candidate c is tracked by this store.
func (st *Store) Tracks(c int) bool {
	return st.memberMask == nil || st.memberMask.Has(c)
}

// Add inserts a copy of inst unless an identical instance is already
// present; it reports whether the instance was new. Dedup uses a 64-bit
// fingerprint index with an Equal check on collision, avoiding the
// string-key allocation a map[string]int would cost per emission.
func (st *Store) Add(inst *bitset.Set) bool {
	if st.memberMask != nil && !st.memberMask.ContainsAll(inst) {
		panic("sampling: instance outside the component store's member set")
	}
	fp := inst.Fingerprint()
	for _, i := range st.index[fp] {
		if st.instances[i].Equal(inst) {
			return false
		}
	}
	cp := inst.Clone()
	row := len(st.instances)
	st.index[fp] = append(st.index[fp], row)
	st.instances = append(st.instances, cp)
	st.fps = append(st.fps, fp)
	st.ensureColWords(row>>6 + 1)
	w, b := row>>6, uint(row&63)
	cp.ForEach(func(c int) bool {
		j := st.columnOf(c)
		st.counts[j]++
		st.cols[j][w] |= 1 << b
		return true
	})
	return true
}

// Size returns |Ω*|, the number of distinct instances held.
func (st *Store) Size() int { return len(st.instances) }

// DistinctSize is an alias of Size (the store is a set).
func (st *Store) DistinctSize() int { return len(st.instances) }

// NumCandidates returns the candidate-universe size.
func (st *Store) NumCandidates() int { return st.numCands }

// NMin returns the view-maintenance threshold.
func (st *Store) NMin() int { return st.nmin }

// LastInstance returns the most recently added instance, or nil when the
// store is empty. The sampler uses it to continue walks across
// incremental refills. The returned set must not be mutated.
func (st *Store) LastInstance() *bitset.Set {
	if len(st.instances) == 0 {
		return nil
	}
	return st.instances[len(st.instances)-1]
}

// Instance returns the i-th instance. The returned set must not be
// mutated.
func (st *Store) Instance(i int) *bitset.Set { return st.instances[i] }

// Complete reports whether the store is known to hold every matching
// instance (Ω* = Ω); probabilities are then exact per Equation 1.
func (st *Store) Complete() bool { return st.complete }

// MarkComplete records that the store holds all matching instances.
func (st *Store) MarkComplete() { st.complete = true }

// ClearComplete revokes completeness (needed after a disapproval, which
// can surface maximal instances that no previous sample subsumed; see
// DESIGN.md).
func (st *Store) ClearComplete() { st.complete = false }

// NeedsResample reports whether the store has fallen below nmin and is
// not known to be complete.
func (st *Store) NeedsResample() bool {
	return !st.complete && len(st.instances) < st.nmin
}

// ApplyAssertion performs the view-maintenance update of §III-B:
// approving c keeps only instances containing c; disapproving keeps only
// instances without c. One compaction pass rebuilds the fingerprint
// index, the columnar matrix, and the per-candidate counts.
//
// Completeness is revoked on any disapproval (new maximal instances can
// surface, see DESIGN.md) and also whenever the kept instance set comes
// out empty: completeness recorded by the two-under-n_min sampling
// heuristic is a *conclusion*, not a proof, and an assertion that wipes
// the store is direct evidence the missing instances were never
// sampled. Keeping the complete flag on an empty store would silently
// dead-end the session — probabilities all 0, entropy 0, NeedsResample
// false — with no way back (the regression this guards is a completed
// store emptied by an approval).
func (st *Store) ApplyAssertion(c int, approved bool) {
	st.mustTrack(c)
	kept := st.instances[:0]
	fps := st.fps[:0]
	clear(st.index)
	for i, inst := range st.instances {
		if inst.Has(c) == approved {
			fp := st.fps[i]
			st.index[fp] = append(st.index[fp], len(kept))
			kept = append(kept, inst)
			fps = append(fps, fp)
		}
	}
	for i := len(kept); i < len(st.instances); i++ {
		st.instances[i] = nil
	}
	st.instances = kept
	st.fps = fps
	st.rebuildColumns()
	if !approved || len(kept) == 0 {
		st.ClearComplete()
	}
}

// ApplyAssertionExact performs *exact* view maintenance over a complete
// store (Ω* = Ω): the instance list is updated through the shared
// FilterInstances kernel, so a disapproval also surfaces the previously
// non-maximal sets that excluding c makes maximal — each instance
// containing c is stripped of it and kept when isMaximal (typically
// Engine.Maximal against the updated exclusion set) approves the
// remainder. Unlike ApplyAssertion, completeness is *preserved*: if the
// store held all of Ω before, it holds all of Ω′ after, for either
// assertion direction (see DESIGN.md, "Hybrid inference"). isMaximal is
// only consulted for disapprovals.
func (st *Store) ApplyAssertionExact(c int, approved bool, isMaximal func(*bitset.Set) bool) {
	st.mustTrack(c)
	st.instances = FilterInstances(st.instances, c, approved, isMaximal)
	// Stripping rewrites instance bits, so fingerprints are recomputed
	// rather than carried over as the plain compaction does.
	st.fps = st.fps[:0]
	clear(st.index)
	for i, inst := range st.instances {
		fp := inst.Fingerprint()
		st.fps = append(st.fps, fp)
		st.index[fp] = append(st.index[fp], i)
	}
	st.rebuildColumns()
}

// ensureColWords grows every column to the given word count. All
// columns share one backing slab (column j at stride colCap), so a
// capacity growth is a single allocation plus one copy per column, and
// adjacent columns stay contiguous for the ranking scan.
func (st *Store) ensureColWords(words int) {
	if words <= st.colWords {
		return
	}
	if words > st.colCap {
		newCap := st.colCap * 2
		if newCap < words {
			newCap = words
		}
		if newCap < 4 {
			newCap = 4
		}
		slab := make([]uint64, st.m*newCap)
		for j, col := range st.cols {
			copy(slab[j*newCap:], col)
		}
		st.slab = slab
		st.colCap = newCap
	}
	st.colWords = words
	for j := range st.cols {
		st.cols[j] = st.slab[j*st.colCap : j*st.colCap+words]
	}
}

// rebuildColumns recomputes the columnar matrix and counts from the
// (compacted) instance list. Sample rows are renumbered densely, so
// every column is rewritten.
func (st *Store) rebuildColumns() {
	words := (len(st.instances) + 63) / 64
	for i := range st.slab {
		st.slab[i] = 0
	}
	st.colWords = 0
	st.ensureColWords(words)
	for j := range st.cols {
		st.cols[j] = st.slab[j*st.colCap : j*st.colCap+words]
		st.counts[j] = 0
	}
	for i, inst := range st.instances {
		w, b := i>>6, uint(i&63)
		inst.ForEach(func(d int) bool {
			j := st.columnOf(d)
			st.counts[j]++
			st.cols[j][w] |= 1 << b
			return true
		})
	}
}

// Probability returns the estimated probability of candidate c
// (Equation 2): the fraction of held instances containing c. It returns
// 0 when the store is empty or does not track c.
func (st *Store) Probability(c int) float64 {
	if len(st.instances) == 0 || !st.Tracks(c) {
		return 0
	}
	return float64(st.counts[st.columnOf(c)]) / float64(len(st.instances))
}

// Probabilities returns the probability estimates for all candidates
// of the universe; untracked candidates read 0.
func (st *Store) Probabilities() []float64 {
	out := make([]float64, st.numCands)
	st.ProbabilitiesInto(out)
	return out
}

// ProbabilitiesInto writes the probability estimates of the tracked
// candidates into out (len ≥ NumCandidates) at their global positions;
// untracked positions are left untouched. This is how a decomposed PMN
// refreshes only the touched component's slice of P.
func (st *Store) ProbabilitiesInto(out []float64) {
	n := len(st.instances)
	if st.members == nil {
		for c := range st.counts {
			if n == 0 {
				out[c] = 0
			} else {
				out[c] = float64(st.counts[c]) / float64(n)
			}
		}
		return
	}
	for j, c := range st.members {
		if n == 0 {
			out[c] = 0
		} else {
			out[c] = float64(st.counts[j]) / float64(n)
		}
	}
}

// MarginalsInto writes the per-column marginal estimates —
// counts[j]/Size(), column-indexed (see GlobalID) — into out, which
// must have length TrackedCount. An empty store writes zeros. Unlike
// ProbabilitiesInto this is dense in *column* space, so two snapshots
// taken around a sampling chunk are directly comparable; the adaptive
// refill loop uses consecutive vectors to test marginal convergence.
func (st *Store) MarginalsInto(out []float64) {
	n := len(st.instances)
	for j := 0; j < st.m; j++ {
		if n == 0 {
			out[j] = 0
		} else {
			out[j] = float64(st.counts[j]) / float64(n)
		}
	}
}

// SmoothedProbabilities returns add-half (Krichevsky–Trofimov) smoothed
// estimates, (count + ½) / (size + 1), for the whole universe
// (untracked candidates smooth from count 0). Finite sampling saturates
// raw frequencies at exactly 0 or 1 even when the true probability is
// not; divergence measurements against exact distributions (Figure 7)
// use the smoothed form so a single saturated estimate cannot dominate.
func (st *Store) SmoothedProbabilities() []float64 {
	out := make([]float64, st.numCands)
	n := float64(len(st.instances))
	for c := range out {
		cnt := 0.0
		if st.Tracks(c) {
			cnt = float64(st.counts[st.columnOf(c)])
		}
		out[c] = (cnt + 0.5) / (n + 1)
	}
	return out
}

// Partition returns how many instances contain c and how many do not.
// c must be tracked by this store.
func (st *Store) Partition(c int) (with, without int) {
	st.mustTrack(c)
	with = st.counts[st.columnOf(c)]
	return with, len(st.instances) - with
}

// CoCounts returns, for every tracked candidate (column-indexed; see
// GlobalID), how many instances contain both c and that candidate
// (with[j]) and how many contain it but not c (without[j]), together
// with the sizes of the two partitions. It is the batched, columnar
// replacement for calling CondCounts twice: one word-wise AND+popcount
// per candidate pair, with the without-side derived as counts[j] −
// with[j].
func (st *Store) CoCounts(c int) (with, without []int, nWith, nWithout int) {
	with = make([]int, st.m)
	without = make([]int, st.m)
	nWith, nWithout = st.CoCountsInto(c, with, without)
	return with, without, nWith, nWithout
}

// CoCountsInto is CoCounts writing into caller-provided slices (len ≥
// TrackedCount each), so ranking loops can reuse scratch buffers.
// c must be tracked by this store.
func (st *Store) CoCountsInto(c int, with, without []int) (nWith, nWithout int) {
	st.mustTrack(c)
	jc := st.columnOf(c)
	colC := st.cols[jc]
	for j := 0; j < st.m; j++ {
		w := bitset.AndCountWords(st.cols[j], colC)
		with[j] = w
		without[j] = st.counts[j] - w
	}
	return st.counts[jc], len(st.instances) - st.counts[jc]
}

// CoCountsSubsetInto is CoCountsInto restricted to a subset of tracked
// columns: with[i] and without[i] receive the partition counts of
// column subset[i]. The lazy ranking pass uses it to touch only the
// uncertain, unasserted members of a component — every excluded column
// would contribute an exactly-zero entropy term — so one candidate
// evaluation costs O(|subset|·words) instead of O(m·words). The counts
// are identical to the corresponding entries of CoCountsInto. c must be
// tracked; subset entries must be valid column indices.
func (st *Store) CoCountsSubsetInto(c int, subset []int, with, without []int) (nWith, nWithout int) {
	st.mustTrack(c)
	jc := st.columnOf(c)
	colC := st.cols[jc]
	for i, j := range subset {
		w := bitset.AndCountWords(st.cols[j], colC)
		with[i] = w
		without[i] = st.counts[j] - w
	}
	return st.counts[jc], len(st.instances) - st.counts[jc]
}

// CoCountsBlockInto computes CoCountsSubsetInto for a block of
// candidates in one sweep over the subset columns: each column's bit
// vector is loaded once and intersected against every candidate in the
// block, instead of once per candidate — the memory-locality win that
// makes a batched lazy evaluation cheaper than popping candidates one
// at a time when the columnar slab outgrows the L1 cache. with[b][i] /
// without[b][i] receive the counts of cands[b] against column
// subset[i]; nWith[b]/nWithout[b] the candidate's own partition sizes.
// cols is caller scratch (len ≥ len(cands)) for the candidates' column
// vectors. The counts are bit-identical to len(cands) separate
// CoCountsSubsetInto calls.
func (st *Store) CoCountsBlockInto(cands []int, subset []int, cols [][]uint64, with, without [][]int, nWith, nWithout []int) {
	n := len(st.instances)
	for b, c := range cands {
		st.mustTrack(c)
		jc := st.columnOf(c)
		cols[b] = st.cols[jc]
		nWith[b] = st.counts[jc]
		nWithout[b] = n - st.counts[jc]
	}
	for i, j := range subset {
		colJ := st.cols[j]
		cnt := st.counts[j]
		for b := range cands {
			w := bitset.AndCountWords(colJ, cols[b])
			with[b][i] = w
			without[b][i] = cnt - w
		}
	}
}

// CondCounts returns, for every tracked candidate (column-indexed), the
// number of instances that contain both c and that candidate (when
// withC is true) or it but not c (when withC is false), together with
// the number of instances in that partition. It is the naive row-major
// scan kept as the reference implementation for the columnar CoCounts;
// property tests cross-check the two. Hot paths should use
// CoCounts/CoCountsInto. c must be tracked by this store.
func (st *Store) CondCounts(c int, withC bool) (counts []int, total int) {
	st.mustTrack(c)
	counts = make([]int, st.m)
	for _, inst := range st.instances {
		if inst.Has(c) != withC {
			continue
		}
		total++
		inst.ForEach(func(d int) bool {
			counts[st.columnOf(d)]++
			return true
		})
	}
	return counts, total
}

// ForEachInstance calls fn for every held instance; the sets must not be
// mutated.
func (st *Store) ForEachInstance(fn func(inst *bitset.Set) bool) {
	for _, inst := range st.instances {
		if !fn(inst) {
			return
		}
	}
}
