package schemanet_test

import (
	"errors"
	"strings"
	"testing"

	"schemanet"
)

// prober is the read interface shared by Session and ConcurrentSession.
type prober interface {
	Probability(c int) (float64, error)
}

// mustProb reads a probability, failing the test on an invalid index.
func mustProb(t testing.TB, s prober, c int) float64 {
	t.Helper()
	p, err := s.Probability(c)
	if err != nil {
		t.Fatalf("Probability(%d): %v", c, err)
	}
	return p
}

// videoNet builds the §II-A example through the public API.
func videoNet(t testing.TB) (*schemanet.Network, *schemanet.Matching) {
	t.Helper()
	b := schemanet.NewBuilder()
	b.AddSchema("EoverI", "productionDate")
	b.AddSchema("BBC", "date")
	b.AddSchema("DVDizzy", "releaseDate", "screenDate")
	b.ConnectAll()
	b.AddCorrespondence(0, 1, 0.85)
	b.AddCorrespondence(1, 2, 0.80)
	b.AddCorrespondence(0, 2, 0.75)
	b.AddCorrespondence(1, 3, 0.60)
	b.AddCorrespondence(0, 3, 0.55)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	truth := schemanet.NewMatching()
	truth.Add(0, 1)
	truth.Add(1, 2)
	truth.Add(0, 2)
	return net, truth
}

func TestSessionEndToEnd(t *testing.T) {
	net, truth := videoNet(t)
	s, err := schemanet.NewSession(net, &schemanet.Options{Exact: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Violations() != 4 {
		t.Fatalf("Violations = %d, want 4", s.Violations())
	}
	if s.Uncertainty() == 0 {
		t.Fatal("fresh network should be uncertain")
	}
	steps := 0
	for s.Uncertainty() > 0 {
		c, ok := s.Suggest()
		if !ok {
			break
		}
		if err := s.Assert(c, truth.ContainsCorrespondence(net.Candidate(c))); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > net.NumCandidates() {
			t.Fatal("reconciliation did not converge")
		}
	}
	trusted := s.Instantiate()
	if trusted.Size() != 3 {
		t.Fatalf("trusted matching size = %d, want 3", trusted.Size())
	}
	if trusted.IntersectionSize(truth) != 3 {
		t.Fatalf("trusted matching differs from truth: %v", trusted.Pairs())
	}
	if s.Effort() <= 0 || s.Effort() > 1 {
		t.Fatalf("Effort = %v out of range", s.Effort())
	}
}

func TestSessionInstantiateBeforeAnyFeedback(t *testing.T) {
	net, _ := videoNet(t)
	s, err := schemanet.NewSession(net, &schemanet.Options{Exact: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	trusted := s.Instantiate()
	if trusted.Size() == 0 {
		t.Fatal("anytime instantiation returned an empty matching")
	}
}

func TestSessionRequiresCandidates(t *testing.T) {
	b := schemanet.NewBuilder()
	b.AddSchema("a", "x")
	b.AddSchema("b", "y")
	b.ConnectAll()
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schemanet.NewSession(net, nil); err == nil {
		t.Fatal("want error for candidate-less network")
	}
}

func TestSessionRequiresConstraints(t *testing.T) {
	net, _ := videoNet(t)
	_, err := schemanet.NewSession(net, &schemanet.Options{
		DisableCycle:    true,
		DisableOneToOne: true,
	})
	if err == nil {
		t.Fatal("want error when all constraints disabled")
	}
}

func TestSessionDescribe(t *testing.T) {
	net, _ := videoNet(t)
	s, err := schemanet.NewSession(net, &schemanet.Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Describe(0); !strings.Contains(d, "↔") {
		t.Fatalf("Describe = %q", d)
	}
}

func TestSessionDoubleAssertFails(t *testing.T) {
	net, _ := videoNet(t)
	s, err := schemanet.NewSession(net, &schemanet.Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Assert(0, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Assert(0, false); !errors.Is(err, schemanet.ErrAlreadyAsserted) {
		t.Fatalf("double assert err = %v, want ErrAlreadyAsserted", err)
	}
}

// TestSessionRejectsInvalidOptions: negative knobs used to flow into
// the core configuration unchecked (a negative Samples silently
// disabled resampling, a negative Workers accidentally meant "all
// CPUs"); NewSession must reject each with a descriptive error naming
// the field.
func TestSessionRejectsInvalidOptions(t *testing.T) {
	net, _ := videoNet(t)
	cases := []struct {
		field string
		opts  schemanet.Options
	}{
		{"Samples", schemanet.Options{Samples: -1}},
		{"Workers", schemanet.Options{Workers: -2}},
		{"StagnationLimit", schemanet.Options{StagnationLimit: -3}},
		{"MaxCycleLen", schemanet.Options{MaxCycleLen: -1}},
		{"InstantiateIterations", schemanet.Options{InstantiateIterations: -10}},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			_, err := schemanet.NewSession(net, &tc.opts)
			if err == nil {
				t.Fatalf("NewSession accepted negative %s", tc.field)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error %q does not name the field %s", err, tc.field)
			}
			if _, err := schemanet.NewConcurrentSession(net, &tc.opts); err == nil {
				t.Fatalf("NewConcurrentSession accepted negative %s", tc.field)
			}
		})
	}
	// Valid positive values still pass.
	if _, err := schemanet.NewSession(net, &schemanet.Options{
		Samples: 50, Workers: 2, StagnationLimit: 64, Exact: true,
	}); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

// TestSessionUnknownCandidate: the serving layer must return
// ErrUnknownCandidate for out-of-universe indices — never panic with a
// bare index-out-of-range.
func TestSessionUnknownCandidate(t *testing.T) {
	net, _ := videoNet(t)
	s, err := schemanet.NewSession(net, &schemanet.Options{Exact: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{-1, net.NumCandidates(), net.NumCandidates() + 100} {
		if err := s.Assert(c, true); !errors.Is(err, schemanet.ErrUnknownCandidate) {
			t.Fatalf("Assert(%d) err = %v, want ErrUnknownCandidate", c, err)
		}
		if _, err := s.Probability(c); !errors.Is(err, schemanet.ErrUnknownCandidate) {
			t.Fatalf("Probability(%d) err = %v, want ErrUnknownCandidate", c, err)
		}
		if _, err := s.ComponentOf(c); !errors.Is(err, schemanet.ErrUnknownCandidate) {
			t.Fatalf("ComponentOf(%d) err = %v, want ErrUnknownCandidate", c, err)
		}
		if d := s.Describe(c); !strings.Contains(d, "unknown candidate") {
			t.Fatalf("Describe(%d) = %q, want a placeholder (and no panic)", c, d)
		}
	}
	// Valid indices keep working after the rejections.
	if _, err := s.Probability(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Assert(0, true); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDatasetProfiles(t *testing.T) {
	for _, name := range []string{"bp", "po", "uaf", "webform"} {
		d, err := schemanet.GenerateDataset(name, 0.15, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Network.NumSchemas() < 2 {
			t.Fatalf("%s: too few schemas", name)
		}
		if d.GroundTruth == nil || d.GroundTruth.Size() == 0 {
			t.Fatalf("%s: no ground truth", name)
		}
	}
	if _, err := schemanet.GenerateDataset("nope", 1, 1); err == nil {
		t.Fatal("want error for unknown profile")
	}
}

func TestMatchThroughFacade(t *testing.T) {
	d, err := schemanet.GenerateDataset("bp", 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []schemanet.Matcher{schemanet.COMALike(), schemanet.AMCLike()} {
		net, err := schemanet.Match(d.Network, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if net.NumCandidates() == 0 {
			t.Fatalf("%s produced no candidates", m.Name())
		}
	}
}

func TestSessionStrategyOption(t *testing.T) {
	net, truth := videoNet(t)
	for _, name := range []string{"", "info-gain", "random", "least-certain", "by-confidence"} {
		s, err := schemanet.NewSession(net, &schemanet.Options{Exact: true, Strategy: name, Seed: 4})
		if err != nil {
			t.Fatalf("strategy %q: %v", name, err)
		}
		c, ok := s.Suggest()
		if !ok {
			t.Fatalf("strategy %q suggested nothing", name)
		}
		if err := s.Assert(c, truth.ContainsCorrespondence(net.Candidate(c))); err != nil {
			t.Fatalf("strategy %q: %v", name, err)
		}
	}
	if _, err := schemanet.NewSession(net, &schemanet.Options{Strategy: "nope"}); err == nil {
		t.Fatal("want error for unknown strategy")
	}
}

func TestSessionExclusivePairs(t *testing.T) {
	net, _ := videoNet(t)
	// Declaring releaseDate (4... attr ids: 0 productionDate, 1 date,
	// 2 releaseDate, 3 screenDate) exclusive with screenDate forbids
	// instances covering both.
	s, err := schemanet.NewSession(net, &schemanet.Options{
		Exact:          true,
		Seed:           5,
		ExclusivePairs: [][2]schemanet.AttrID{{2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The extra constraint adds violations beyond the base four.
	if s.Violations() <= 4 {
		t.Fatalf("Violations = %d, want > 4 with the exclusion", s.Violations())
	}
	trusted := s.Instantiate()
	coversRelease, coversScreen := false, false
	for _, p := range trusted.Pairs() {
		if p[0] == 2 || p[1] == 2 {
			coversRelease = true
		}
		if p[0] == 3 || p[1] == 3 {
			coversScreen = true
		}
	}
	if coversRelease && coversScreen {
		t.Fatalf("instantiation covers both exclusive attributes: %v", trusted.Pairs())
	}
}

func TestSessionOnMatchedNetwork(t *testing.T) {
	d, err := schemanet.GenerateDataset("bp", 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	net, err := schemanet.Match(d.Network, schemanet.COMALike())
	if err != nil {
		t.Fatal(err)
	}
	s, err := schemanet.NewSession(net, &schemanet.Options{Seed: 9, Samples: 150})
	if err != nil {
		t.Fatal(err)
	}
	h0 := s.Uncertainty()
	// A 15% budget must reduce uncertainty and keep instantiation valid.
	budget := net.NumCandidates() * 15 / 100
	for i := 0; i < budget; i++ {
		c, ok := s.Suggest()
		if !ok {
			break
		}
		if err := s.Assert(c, d.GroundTruth.ContainsCorrespondence(net.Candidate(c))); err != nil {
			t.Fatal(err)
		}
	}
	if h0 > 0 && s.Uncertainty() >= h0 {
		t.Fatalf("uncertainty did not drop: %v -> %v", h0, s.Uncertainty())
	}
	trusted := s.Instantiate()
	if trusted.Size() == 0 {
		t.Fatal("empty instantiation")
	}
	inter := trusted.IntersectionSize(d.GroundTruth)
	prec := float64(inter) / float64(trusted.Size())
	if prec < 0.5 {
		t.Fatalf("instantiated precision %.3f suspiciously low", prec)
	}
}
