package schemanet

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"schemanet/internal/core"
)

// ConcurrentSession serves one reconciliation session to many
// goroutines at once — the paper's pay-as-you-go loop is inherently
// interactive, with many experts asserting in parallel against the same
// network. It exploits the component decomposition's independence
// guarantee (no constraint violation ever spans two
// constraint-connected components, see DESIGN.md):
//
//   - Reads — Probability, Uncertainty, Suggest — are lock-free: they
//     load an atomically-published immutable snapshot per component
//     (probabilities, cached entropy term, gain ranking) and never
//     block on writers.
//   - Writes — Assert, AssertBatch — take one lock per touched
//     component. Assertions on different components proceed in
//     parallel (view maintenance, resampling, and re-ranking are all
//     component-local); assertions on the same component serialize.
//   - Snapshot publication is *coalesced*: a single Assert only marks
//     its component dirty; the next reader that touches the component
//     republishes once, under the component's lock, no matter how many
//     assertions landed in between. A burst of assertions between
//     reads pays for one publication instead of one per assertion
//     (ROADMAP item 2), and reads remain fresh — a dirty load upgrades
//     before serving. Batch writes publish eagerly (once per touched
//     component per batch) since the batch already amortizes the cost.
//   - Gain re-ranking is *deferred* further still: publications are
//     probs-only, and the next Suggest re-ranks just the components
//     whose published snapshot is unranked — through the lazy
//     bound-pruned top-k evaluator (core.PMN.TopGains), skipping
//     entirely any component whose entropy term cannot reach the best
//     gain already found. Assert-only workloads never re-rank at all.
//     The ranking is a deterministic function of component state, so
//     suggestions are exactly what eager exhaustive re-ranking would
//     produce (Options.ExhaustiveRank forces the legacy pass).
//   - Each component samples from its own deterministic rng stream
//     (seeded from the session seed at construction), so a
//     component-disjoint assertion schedule produces probabilities
//     bit-identical to the same schedule applied serially — however the
//     goroutines interleave.
//
// Obtain one with Session.Concurrent or NewConcurrentSession. All
// ConcurrentSession methods are safe for concurrent use.
type ConcurrentSession struct {
	s   *Session
	pmn *core.PMN

	// topoMu guards the component universe itself: every public method
	// holds the read side (the network, the partition, and the locks /
	// snaps slices below are all stable while any reader is in flight),
	// and the topology mutators — AddSchema, AddCandidates,
	// RetireCandidate — take the write side, excluding every other
	// operation while components merge or split and the per-component
	// lock and snapshot tables are rebuilt. Go's RWMutex is
	// writer-preferring, so a steady read load cannot starve arrivals.
	// Lock order: topoMu, then batchMu, then component locks ascending,
	// then feedMu.
	topoMu sync.RWMutex

	// locks[k] serializes all maintenance of component k. Multi-lock
	// paths (Instantiate, Save) acquire in ascending component order;
	// feedMu is only ever taken while holding at most the locks already
	// held, and always after them — the lock order "component locks
	// ascending, then feedMu" is acyclic.
	locks []sync.Mutex
	// snaps[k] is component k's published snapshot; writers store a
	// fresh probs-only snapshot after maintenance, suggestion readers
	// upgrade it to a ranked one on demand (rankComponent), and
	// everything else only ever Loads. The Ranked flag travels on the
	// snapshot itself, so flag and data swap in one atomic store.
	snaps []atomic.Pointer[core.ComponentSnapshot]
	// dirty[k] records that component k's state has advanced past its
	// published snapshot: single Asserts set it instead of publishing,
	// and the next reader that needs component k republishes under
	// locks[k] — storing the fresh snapshot *before* clearing the flag,
	// so a reader that observes dirty[k] == false is guaranteed to load
	// a snapshot at least as fresh as the clearing writer's.
	dirty []atomic.Bool
	// feedMu guards the PMN-global feedback (history + F±): recording
	// is cheap and strictly serialized, while the expensive
	// component maintenance reads only component-local feedback masks.
	feedMu sync.Mutex
	// batchMu closes AssertBatch's record→apply window against the
	// whole-network operations: a batch holds the read side from before
	// it records the feedback until every component group has been
	// applied, and lockAll takes the write side first, so Instantiate
	// and Save can never observe feedback recorded for a batch whose
	// stores and probabilities are still pre-batch. Single Asserts need
	// no part in this — they record and apply under their component's
	// lock, which lockAll already excludes. Lock order: batchMu, then
	// component locks ascending, then feedMu.
	batchMu sync.RWMutex
	// sugMu guards the suggestion rng only. Suggest still never touches
	// a component lock — tie-breaking draws are the one bit of shared
	// state reads need.
	sugMu  sync.Mutex
	sugRng *rand.Rand

	workers int
}

// Concurrent wraps the session for concurrent serving. The wrapper
// takes ownership: after the call, use only the ConcurrentSession —
// calling methods on the underlying Session concurrently with the
// wrapper is the unsynchronized access the wrapper exists to prevent.
func (s *Session) Concurrent() *ConcurrentSession {
	n := s.pmn.NumComponents()
	cs := &ConcurrentSession{
		s:       s,
		pmn:     s.pmn,
		locks:   make([]sync.Mutex, n),
		snaps:   make([]atomic.Pointer[core.ComponentSnapshot], n),
		dirty:   make([]atomic.Bool, n),
		workers: s.workers,
		// The suggestion stream is deliberately distinct from the
		// session rng: the component samplers may share the session rng
		// on the single-component path, and suggestions must never
		// perturb (or race with) sampling draws.
		sugRng: rand.New(rand.NewSource(s.seed ^ 0x5eed5a17)),
	}
	if s.pmn.ExhaustiveRank() {
		// A fresh session is gain-stale everywhere: one worker-sharded
		// cold ranking pass (the serial path's machinery) beats ranking
		// each component sequentially in the snapshot loop, which then
		// finds every component already ranked.
		s.pmn.InformationGains()
		for k := 0; k < n; k++ {
			cs.snaps[k].Store(s.pmn.SnapshotComponent(k))
		}
		return cs
	}
	// Lazy mode: publish probs-only snapshots and let the first Suggest
	// rank on demand — the entropy-ordered skip rule then prunes most
	// components without ever ranking them.
	for k := 0; k < n; k++ {
		cs.snaps[k].Store(s.pmn.SnapshotComponentProbs(k))
	}
	return cs
}

// NewConcurrentSession builds a session for the network's candidate
// correspondences and wraps it for concurrent serving in one step.
func NewConcurrentSession(net *Network, opts *Options) (*ConcurrentSession, error) {
	s, err := NewSession(net, opts)
	if err != nil {
		return nil, err
	}
	return s.Concurrent(), nil
}

// Network returns the session's network. Topology mutators grow it in
// place, so hold any returned sub-structures only briefly.
func (cs *ConcurrentSession) Network() *Network {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	return cs.pmn.Network()
}

// Components returns how many constraint-connected components the
// network decomposes into — the session's maximal write parallelism.
func (cs *ConcurrentSession) Components() int {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	return cs.pmn.NumComponents()
}

// ComponentOf returns the component candidate c belongs to under the
// current topology (mutators can merge or split components). It returns
// ErrUnknownCandidate (wrapped) for an out-of-universe c.
func (cs *ConcurrentSession) ComponentOf(c int) (int, error) {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	return cs.s.ComponentOf(c)
}

// InferenceOf reports which estimation backend currently serves
// component k (see Session.InferenceOf). Unlike the partition, the mode
// is mutable state — an "auto" component promotes to exact under its
// maintenance lock — so the read briefly takes that lock.
func (cs *ConcurrentSession) InferenceOf(k int) (InferenceMode, error) {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	if k < 0 || k >= cs.pmn.NumComponents() {
		return 0, fmt.Errorf("schemanet: component index %d outside [0,%d)", k, cs.pmn.NumComponents())
	}
	cs.locks[k].Lock()
	defer cs.locks[k].Unlock()
	return cs.pmn.ComponentInference(k), nil
}

// Describe renders candidate c with its schemas, attributes, and
// matcher confidence; a placeholder for an out-of-universe c, as on
// Session.
func (cs *ConcurrentSession) Describe(c int) string {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	return cs.s.Describe(c)
}

// Violations returns the number of distinct constraint violations among
// the raw candidate correspondences (live only: retired candidates sit
// on no violation).
func (cs *ConcurrentSession) Violations() int {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	return cs.s.engine.ViolationCount(cs.s.engine.FullInstance())
}

// Probability returns the current probability of candidate c from the
// owning component's published snapshot. The common path is lock-free;
// when coalesced assertions have left the component's publication
// behind (see dirty), the read republishes once under the component's
// lock first, so completed assertions are always visible. It returns
// ErrUnknownCandidate (wrapped) for an out-of-universe c.
func (cs *ConcurrentSession) Probability(c int) (float64, error) {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	if err := cs.s.checkCandidate(c); err != nil {
		return 0, err
	}
	snap := cs.loadFresh(cs.pmn.ComponentOf(c))
	return snap.ProbabilityAt(cs.pmn.LocalIndex(c)), nil
}

// Uncertainty returns the network uncertainty H(C, P) (Equation 3) as
// the sum of the published per-component entropy terms, republishing
// any component whose publication was deferred by coalescing. Each
// term is internally consistent; the sum reflects each component's
// most recently published state rather than one global instant.
func (cs *ConcurrentSession) Uncertainty() float64 {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	h := 0.0
	for k := range cs.snaps {
		h += cs.loadFresh(k).Entropy()
	}
	return h
}

// loadFresh returns component k's published snapshot, first
// republishing it if coalesced assertions marked it dirty.
func (cs *ConcurrentSession) loadFresh(k int) *core.ComponentSnapshot {
	if cs.dirty[k].Load() {
		return cs.refreshComponent(k)
	}
	return cs.snaps[k].Load()
}

// refreshComponent publishes a fresh probs-only snapshot of component
// k under its lock, clearing the dirty flag. Double-checked: a racing
// refresh may already have republished, in which case the current
// snapshot is returned as is.
func (cs *ConcurrentSession) refreshComponent(k int) *core.ComponentSnapshot {
	cs.locks[k].Lock()
	defer cs.locks[k].Unlock()
	if !cs.dirty[k].Load() {
		return cs.snaps[k].Load()
	}
	snap := cs.pmn.SnapshotComponentProbs(k)
	cs.snaps[k].Store(snap)
	cs.dirty[k].Store(false)
	return snap
}

// Suggest returns the candidate whose assertion is expected to reduce
// network uncertainty the most, merging the per-component maximal-gain
// tie sets from the published snapshots without taking any component's
// write lock. Ties are broken uniformly at random, as in the serial
// strategy; once no uncertain candidate remains anywhere it degrades to
// random among the unasserted rest. ok is false when every candidate
// has been asserted.
func (cs *ConcurrentSession) Suggest() (c int, ok bool) {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	lazy := !cs.pmn.ExhaustiveRank()
	best := -1.0
	nUnasserted := 0
	snaps := make([]*core.ComponentSnapshot, len(cs.snaps))
	var pending []int
	for k := range cs.snaps {
		snap := cs.loadFresh(k)
		snaps[k] = snap
		nUnasserted += len(snap.Unasserted())
		if !snap.Ranked() {
			pending = append(pending, k)
			continue
		}
		if compBest, g := snap.Best(); len(compBest) > 0 && g > best {
			best = g
		}
	}
	// Rank the unranked components highest-entropy-term first: H_k is an
	// upper bound on any member's gain, so once the running best exceeds
	// a component's entropy term (strictly, beyond the fp margin) the
	// component cannot contribute a maximum or a tie and is skipped
	// without any ranking work — left unranked for a later Suggest to
	// revisit if the bar ever drops. The skip is gated on lazy mode so
	// Options.ExhaustiveRank keeps the legacy rank-everything behavior.
	sort.Slice(pending, func(a, b int) bool {
		ea, eb := snaps[pending[a]].Entropy(), snaps[pending[b]].Entropy()
		if ea != eb {
			return ea > eb
		}
		return pending[a] < pending[b]
	})
	for _, k := range pending {
		if lazy && snaps[k].Entropy() < best-core.PruneMargin(best) {
			continue
		}
		snap := cs.rankComponent(k)
		snaps[k] = snap
		if compBest, g := snap.Best(); len(compBest) > 0 && g > best {
			best = g
		}
	}
	if best >= 0 {
		// Merge the tie sets in ascending component order — the same
		// concatenation the eager rank-everything loop produced, so the
		// tie-break draw lands on the same candidate for the same rng
		// state. Components skipped above cannot hold a tie: every member
		// gain is bounded by the entropy term the skip compared.
		var ties []int
		for _, snap := range snaps {
			if snap.Ranked() {
				if compBest, g := snap.Best(); g == best {
					ties = append(ties, compBest...)
				}
			}
		}
		return ties[cs.intn(len(ties))], true
	}
	if nUnasserted == 0 {
		return 0, false
	}
	// Fallback: uniform over the union of the per-component unasserted
	// pools (every remaining candidate is certain; asserting any of
	// them changes nothing, matching the serial fallback).
	i := cs.intn(nUnasserted)
	for _, snap := range snaps {
		u := snap.Unasserted()
		if i < len(u) {
			return u[i], true
		}
		i -= len(u)
	}
	// Unreachable: i < nUnasserted by construction.
	return 0, false
}

// rankComponent upgrades component k's published snapshot to a ranked
// one under the component's lock, through the lazy bound-pruned top-k
// evaluator (SnapshotComponentTop; the exhaustive pass under
// Options.ExhaustiveRank). Double-checked — a concurrent Suggest or a
// write that raced us may have published a current ranked snapshot
// first, in which case the re-rank is already paid and the snapshot is
// returned as is. A set dirty flag defeats the short-circuit: it means
// assertions landed after that publication.
func (cs *ConcurrentSession) rankComponent(k int) *core.ComponentSnapshot {
	cs.locks[k].Lock()
	defer cs.locks[k].Unlock()
	if snap := cs.snaps[k].Load(); snap.Ranked() && !cs.dirty[k].Load() {
		return snap
	}
	snap := cs.pmn.SnapshotComponentTop(k)
	cs.snaps[k].Store(snap)
	cs.dirty[k].Store(false)
	return snap
}

// intn draws from the suggestion rng under its own tiny lock.
func (cs *ConcurrentSession) intn(n int) int {
	cs.sugMu.Lock()
	defer cs.sugMu.Unlock()
	return cs.sugRng.Intn(n)
}

// Assert integrates an expert statement about candidate c: the global
// feedback record is serialized under a short lock, the expensive view
// maintenance and resampling run under the owning component's lock
// only, and publication is coalesced — the component is marked dirty
// and the next reader that touches it publishes one snapshot for the
// whole burst of assertions (gain re-ranking is deferred further
// still, to the next Suggest; see rankComponent). Assertions touching
// different components proceed in parallel. It returns
// ErrUnknownCandidate (wrapped) for an out-of-universe c and an error
// when c was already asserted (no state changes).
func (cs *ConcurrentSession) Assert(c int, correct bool) error {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	if err := cs.s.checkCandidate(c); err != nil {
		return err
	}
	k := cs.pmn.ComponentOf(c)
	cs.locks[k].Lock()
	defer cs.locks[k].Unlock()
	cs.feedMu.Lock()
	err := cs.pmn.RecordAssertion(c, correct)
	cs.feedMu.Unlock()
	if err != nil {
		return err
	}
	cs.pmn.ApplyAssertions(k, []Assertion{{Cand: c, Approved: correct}})
	// Coalesced publication (ROADMAP item 2): mark the component dirty
	// instead of building a snapshot here — the next reader that touches
	// it republishes once for the whole burst of assertions.
	cs.dirty[k].Store(true)
	return nil
}

// AssertBatch integrates many assertions at once — the asynchronous
// arrival pattern of a crowd of experts. The batch is validated and
// recorded atomically (a duplicate, already-asserted, or
// out-of-universe candidate rejects the whole batch with no state
// change), then grouped by component and fanned out across a bounded
// worker pool: each touched component is view-maintained in batch
// order, refilled at most once, and republished (probs-only; ranking
// deferred) under its own lock. Components never wait for each other;
// per-component rng streams keep the result identical to applying the
// same batch serially.
func (cs *ConcurrentSession) AssertBatch(assertions []Assertion) error {
	if len(assertions) == 0 {
		return nil
	}
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	for i, a := range assertions {
		if err := cs.s.checkCandidate(a.Cand); err != nil {
			return fmt.Errorf("assertion %d: %w", i, err)
		}
	}
	cs.batchMu.RLock()
	defer cs.batchMu.RUnlock()
	cs.feedMu.Lock()
	if err := cs.pmn.ValidateBatch(assertions); err != nil {
		cs.feedMu.Unlock()
		return err
	}
	for _, a := range assertions {
		if err := cs.pmn.RecordAssertion(a.Cand, a.Approved); err != nil {
			// Unreachable after validation; surface loudly if it happens.
			panic(err)
		}
	}
	cs.feedMu.Unlock()

	groups := cs.pmn.GroupByComponent(assertions)
	comps := make([]int, 0, len(groups))
	for k := range groups {
		comps = append(comps, k)
	}
	sort.Ints(comps)
	workers := cs.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers <= 1 {
		for _, k := range comps {
			cs.applyGroup(k, groups[k])
		}
		return nil
	}
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(comps) {
					return
				}
				k := comps[i]
				cs.applyGroup(k, groups[k])
			}
		}()
	}
	wg.Wait()
	return nil
}

// applyGroup runs one component's share of a batch under its lock and
// publishes the fresh probs-only snapshot — one publication per
// touched component per batch, however large the group (ranking is
// deferred to the next Suggest; see rankComponent). The store precedes
// the dirty clear so readers that observe the clear also observe the
// snapshot.
func (cs *ConcurrentSession) applyGroup(k int, as []Assertion) {
	cs.locks[k].Lock()
	defer cs.locks[k].Unlock()
	cs.pmn.ApplyAssertions(k, as)
	cs.snaps[k].Store(cs.pmn.SnapshotComponentProbs(k))
	cs.dirty[k].Store(false)
}

// Effort returns the fraction of candidates asserted so far.
func (cs *ConcurrentSession) Effort() float64 {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	cs.feedMu.Lock()
	defer cs.feedMu.Unlock()
	return cs.pmn.Feedback().Effort()
}

// lockAll acquires the batch exclusion, every component lock in
// ascending order, and the feedback lock — exclusive access for the
// whole-network operations, with no in-flight batch half-applied.
func (cs *ConcurrentSession) lockAll() {
	cs.batchMu.Lock()
	for k := range cs.locks {
		cs.locks[k].Lock()
	}
	cs.feedMu.Lock()
}

func (cs *ConcurrentSession) unlockAll() {
	cs.feedMu.Unlock()
	for k := range cs.locks {
		cs.locks[k].Unlock()
	}
	cs.batchMu.Unlock()
}

// AddSchema registers a new schema on the live concurrent session (see
// Session.AddSchema). The mutation takes the topology write lock —
// total exclusion against every reader and writer — and rebuilds the
// per-component lock and snapshot tables before readers resume.
func (cs *ConcurrentSession) AddSchema(name string, attrs ...string) error {
	cs.topoMu.Lock()
	defer cs.topoMu.Unlock()
	carried, err := cs.s.addSchema(name, attrs)
	if err != nil {
		return err
	}
	cs.rebuildTables(carried)
	return nil
}

// AddCandidates appends candidate correspondences to the live
// concurrent session (see Session.AddCandidates). Components bridged by
// a new candidate merge; the merged components' snapshots are
// republished while every untouched component keeps its published
// snapshot — readers of other components observe no change at all.
func (cs *ConcurrentSession) AddCandidates(correspondences []Correspondence) error {
	cs.topoMu.Lock()
	defer cs.topoMu.Unlock()
	carried, err := cs.s.addCandidates(correspondences)
	if err != nil {
		return err
	}
	cs.rebuildTables(carried)
	return nil
}

// RetireCandidate withdraws candidate c from the live concurrent
// session (see Session.RetireCandidate). Only the split parts of the
// retiree's component republish; every other component keeps its
// published snapshot.
func (cs *ConcurrentSession) RetireCandidate(c int) error {
	cs.topoMu.Lock()
	defer cs.topoMu.Unlock()
	carried, err := cs.s.retireCandidate(c)
	if err != nil {
		return err
	}
	cs.rebuildTables(carried)
	return nil
}

// rebuildTables re-sizes the per-component lock and snapshot tables
// after a topology mutation, under the topology write lock (no reader
// or writer is in flight). Components carried verbatim by the
// underlying relayout keep their published snapshot pointer — members,
// probabilities, entropy, and ranking are all unchanged, including the
// Ranked flag, so a previously ranked component stays ranked. Rebuilt
// components publish a probs-only snapshot; ranking is deferred to the
// next Suggest as everywhere else.
func (cs *ConcurrentSession) rebuildTables(carried map[int]int) {
	nk := cs.pmn.NumComponents()
	old := cs.snaps
	snaps := make([]atomic.Pointer[core.ComponentSnapshot], nk)
	dirty := make([]atomic.Bool, nk)
	for k := 0; k < nk; k++ {
		if k0, ok := carried[k]; ok {
			// Carried components keep both the published snapshot and any
			// pending coalesced-publication debt.
			snaps[k].Store(old[k0].Load())
			dirty[k].Store(cs.dirty[k0].Load())
		} else {
			snaps[k].Store(cs.pmn.SnapshotComponentProbs(k))
		}
	}
	cs.locks = make([]sync.Mutex, nk)
	cs.snaps = snaps
	cs.dirty = dirty
}

// Instantiate derives a trusted matching from the current state (§V,
// Algorithm 2). The local search reads every component's samples and
// the full feedback, so it briefly takes exclusive access — assertions
// issued meanwhile block until it finishes.
func (cs *ConcurrentSession) Instantiate() *Matching {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	cs.lockAll()
	defer cs.unlockAll()
	return cs.s.Instantiate()
}

// Save writes the session's feedback so reconciliation can resume later
// (see LoadSession); concurrent assertions are excluded from the saved
// history, not torn.
func (cs *ConcurrentSession) Save(w io.Writer) error {
	cs.topoMu.RLock()
	defer cs.topoMu.RUnlock()
	cs.lockAll()
	defer cs.unlockAll()
	return cs.s.Save(w)
}
