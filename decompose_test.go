package schemanet_test

import (
	"math"
	"strings"
	"testing"

	"schemanet"
)

// multiVideoNet builds `groups` disconnected copies of the §II-A video
// triangle through the public API: every copy is its own
// constraint-connected component with five candidates, so the network
// decomposes into exactly `groups` components. The ground truth selects
// each copy's {c1, c2, c3} triangle.
func multiVideoNet(t testing.TB, groups int) (*schemanet.Network, *schemanet.Matching) {
	t.Helper()
	b := schemanet.NewBuilder()
	truth := schemanet.NewMatching()
	for g := 0; g < groups; g++ {
		p := string(rune('A'+g%26)) + strings.Repeat("x", g/26)
		s1 := b.AddSchema(p+"EoverI", "productionDate")
		s2 := b.AddSchema(p+"BBC", "date")
		s3 := b.AddSchema(p+"DVDizzy", "releaseDate", "screenDate")
		b.Connect(s1, s2)
		b.Connect(s2, s3)
		b.Connect(s1, s3)
		base := schemanet.AttrID(g * 4)
		b.AddCorrespondence(base+0, base+1, 0.85)
		b.AddCorrespondence(base+1, base+2, 0.80)
		b.AddCorrespondence(base+0, base+2, 0.75)
		b.AddCorrespondence(base+1, base+3, 0.60)
		b.AddCorrespondence(base+0, base+3, 0.55)
		truth.Add(base+0, base+1)
		truth.Add(base+1, base+2)
		truth.Add(base+0, base+2)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net, truth
}

// TestDecomposedMatchesMonolithicExact is the headline differential
// guarantee of the component decomposition: on a multi-component
// network under Options.Exact, the decomposed PMN computes *identical*
// probabilities to the monolithic single-sample-space path, after every
// assertion of a full reconciliation — including disapprovals, which
// trigger per-component re-enumeration on one side and global
// re-enumeration on the other.
func TestDecomposedMatchesMonolithicExact(t *testing.T) {
	net, truth := multiVideoNet(t, 3)
	dec, err := schemanet.NewSession(net, &schemanet.Options{Exact: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := schemanet.NewSession(net, &schemanet.Options{Exact: true, Seed: 11, Monolithic: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Components(); got != 3 {
		t.Fatalf("decomposed session has %d components, want 3", got)
	}
	if got := mono.Components(); got != 1 {
		t.Fatalf("monolithic session has %d components, want 1", got)
	}

	compare := func(step string) {
		t.Helper()
		for c := 0; c < net.NumCandidates(); c++ {
			if dp, mp := mustProb(t, dec, c), mustProb(t, mono, c); dp != mp {
				t.Fatalf("%s: p(%d) decomposed %v != monolithic %v", step, c, dp, mp)
			}
		}
		if dh, mh := dec.Uncertainty(), mono.Uncertainty(); math.Abs(dh-mh) > 1e-12 {
			t.Fatalf("%s: H decomposed %v != monolithic %v", step, dh, mh)
		}
	}
	compare("initial")

	// Drive both sessions through the same fixed assertion sequence
	// (candidate order, oracle = ground truth) so the comparison is
	// independent of tie-breaking in Suggest.
	for c := 0; c < net.NumCandidates(); c++ {
		approve := truth.ContainsCorrespondence(net.Candidate(c))
		if err := dec.Assert(c, approve); err != nil {
			t.Fatal(err)
		}
		if err := mono.Assert(c, approve); err != nil {
			t.Fatal(err)
		}
		compare(net.DescribeCandidate(c))
	}

	// After full feedback both must instantiate exactly the truth.
	di, mi := dec.Instantiate(), mono.Instantiate()
	if di.Size() != truth.Size() || di.IntersectionSize(truth) != truth.Size() {
		t.Fatalf("decomposed instantiation %v != truth %v", di.Pairs(), truth.Pairs())
	}
	if mi.Size() != di.Size() || mi.IntersectionSize(di) != di.Size() {
		t.Fatalf("instantiations differ: decomposed %v, monolithic %v", di.Pairs(), mi.Pairs())
	}
	if dec.Uncertainty() != 0 || mono.Uncertainty() != 0 {
		t.Fatalf("final uncertainty %v / %v, want 0", dec.Uncertainty(), mono.Uncertainty())
	}
}

// TestDecomposedSuggestWorksPerComponent: a decomposed session must
// reconcile end to end — suggestions drain all components' uncertainty,
// not just the first component's.
func TestDecomposedSuggestWorksPerComponent(t *testing.T) {
	net, truth := multiVideoNet(t, 4)
	s, err := schemanet.NewSession(net, &schemanet.Options{Exact: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for s.Uncertainty() > 0 {
		c, ok := s.Suggest()
		if !ok {
			break
		}
		if err := s.Assert(c, truth.ContainsCorrespondence(net.Candidate(c))); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > net.NumCandidates() {
			t.Fatal("reconciliation did not converge")
		}
	}
	if s.Uncertainty() != 0 {
		t.Fatalf("uncertainty %v after draining suggestions", s.Uncertainty())
	}
	trusted := s.Instantiate()
	if trusted.IntersectionSize(truth) != truth.Size() || trusted.Size() != truth.Size() {
		t.Fatalf("instantiation %v != truth %v", trusted.Pairs(), truth.Pairs())
	}
}

// TestDecomposedSampledStatisticallyEquivalent: with sampled
// probabilities on a multi-component network small enough that every
// component's sample set completes (each triangle has 4 instances,
// far below n_min), the decomposed estimates equal the exact
// per-component probabilities — and so do the monolithic ones when its
// global store completes. 3 components give 4³ = 64 global instances,
// still below the default n_min of 200, so both sides are exact here.
func TestDecomposedSampledStatisticallyEquivalent(t *testing.T) {
	net, _ := multiVideoNet(t, 3)
	exact, err := schemanet.NewSession(net, &schemanet.Options{Exact: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []*schemanet.Options{
		{Seed: 7, Samples: 400},
		{Seed: 7, Samples: 400, Monolithic: true},
	} {
		s, err := schemanet.NewSession(net, opts)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < net.NumCandidates(); c++ {
			if got, want := mustProb(t, s, c), mustProb(t, exact, c); math.Abs(got-want) > 1e-9 {
				t.Fatalf("monolithic=%v: p(%d) = %v, want %v (store should cover all instances)",
					opts.Monolithic, c, got, want)
			}
		}
	}
}
